//===- bench/LoadGen.cpp - Stress-SGX-style provisioning load generator ---===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench/LoadGen.h"

#include "elide/Provisioner.h"
#include "server/FaultInjection.h"
#include "server/Transport.h"
#include "sgx/Attestation.h"
#include "sgx/SgxDevice.h"
#include "support/Stats.h"

#include <algorithm>
#include <arpa/inet.h>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace elide;
using namespace elide::loadgen;

namespace {

using Clock = std::chrono::steady_clock;

/// The attested-enclave stand-in: a scratch enclave on a simulated device
/// whose QE signs reports over caller-chosen report data. One instance
/// serves every attestation round (quotes are minted under a lock; the
/// signing cost is part of what batching amortizes away).
struct QuoteMint {
  sgx::SgxDevice Device;
  sgx::AttestationAuthority Authority;
  sgx::QuotingEnclave Qe;
  std::unique_ptr<sgx::Enclave> Enclave;
  sgx::Measurement Mr{};
  std::mutex Mutex;

  explicit QuoteMint(uint64_t Seed)
      : Device(Seed), Authority(Seed + 1), Qe(Device, Authority) {}

  Error build() {
    sgx::SgxDevice::Builder B(Device, 0x4000);
    if (Error E = B.addPage(0x1000, sgx::PermRead, Bytes(8, 0x5a)))
      return E;
    Drbg VendorRng(11);
    Ed25519Seed Seed{};
    VendorRng.fill(MutableBytesView(Seed.data(), 32));
    sgx::SigStruct Sig = sgx::SigStruct::sign(ed25519KeyPairFromSeed(Seed),
                                              B.currentMeasurement(), 0);
    ELIDE_TRY(Enclave, B.init(Sig));
    Mr = Enclave->mrEnclave();
    return Error::success();
  }

  /// Quote whose report data leads with \p BindingHash.
  Expected<Bytes> quoteFor(const std::array<uint8_t, 32> &BindingHash) {
    std::lock_guard<std::mutex> Lock(Mutex);
    sgx::ReportData Rd{};
    std::memcpy(Rd.data(), BindingHash.data(), 32);
    sgx::Report R = Enclave->createReport(Qe.targetInfo(), Rd);
    ELIDE_TRY(sgx::Quote Q, Qe.quoteReport(R));
    return Q.serialize();
  }
};

/// Blocking localhost connect for the ballast pool.
int connectBallast(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

double percentile(std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  size_t Idx = static_cast<size_t>(Q * static_cast<double>(Sorted.size()));
  if (Idx >= Sorted.size())
    Idx = Sorted.size() - 1;
  return Sorted[Idx];
}

/// Per-worker accounting, merged after the join.
struct WorkerResult {
  std::vector<double> LatenciesMs;
  size_t Failed = 0;
  size_t Attempts = 0;
  size_t Shed = 0;
  size_t DeadlineMissed = 0;
  size_t RecordAttempts = 0;
};

/// True when the server answered an ERROR frame carrying the
/// deadline-expired marker (the transport hands raw frames back).
bool frameSaysDeadlineExpired(BytesView Frame) {
  if (Frame.empty() || Frame[0] != FrameError)
    return false;
  return errorSaysDeadlineExpired(
      std::string(reinterpret_cast<const char *>(Frame.data()) + 1,
                  Frame.size() - 1));
}

/// One full simulated restore: batch-join a session, then fetch the
/// metadata over the record channel. Returns success; always counts
/// attempts/shed into \p R.
bool restoreOnce(AttestationBatcher &Batcher,
                 const std::array<uint8_t, 32> &GroupKey, Transport &Records,
                 Drbg &Rng, const LoadGenConfig &Cfg, WorkerResult &R) {
  X25519Key Priv;
  Rng.fill(MutableBytesView(Priv.data(), 32));
  X25519Key Pub = x25519PublicKey(Priv);

  Expected<BatchJoinResult> Join = Batcher.join(GroupKey, Pub);
  ++R.Attempts;
  if (!Join) {
    // One fresh attempt: a faulted batch round fails the whole group, but
    // the next wave usually goes through.
    Join = Batcher.join(GroupKey, Pub);
    ++R.Attempts;
    if (!Join)
      return false;
  }
  SessionKeys Keys = deriveSessionKeys(x25519(Priv, Join->ServerPub), Pub,
                                       Join->ServerPub);

  bool Envelope = Cfg.EnvelopeRecords || Cfg.RecordDeadlineMs;
  for (int Attempt = 0; Attempt < 4; ++Attempt) {
    Expected<Bytes> Frame = sealSessionRecord(
        Join->Sid, Keys.ClientToServer, Bytes{RequestMeta}, Rng);
    if (!Frame)
      return false;
    ++R.RecordAttempts;
    Bytes Wire = *Frame;
    if (Envelope) {
      // Cycle the classes per attempt so the server's per-class shed
      // counters see a mixed fleet, not a monoculture.
      auto Class = static_cast<Criticality>(R.RecordAttempts % 3);
      Wire = envelopeFrame(Cfg.RecordDeadlineMs, Class, *Frame);
    }
    Expected<Bytes> Response = Records.roundTrip(Wire);
    if (Response) {
      if (frameSaysDeadlineExpired(*Response)) {
        ++R.DeadlineMissed;
        continue;
      }
      Expected<Bytes> Meta = openRecord(Keys.ServerToClient, *Response);
      return static_cast<bool>(Meta) && !Meta->empty();
    }
    TransportErrc Errc = transportErrcOf(Response);
    if (Errc == TransportErrc::Overloaded)
      ++R.Shed;
    else if (Errc == TransportErrc::DeadlineExceeded) {
      // A lapsed deadline is terminal for this request by definition.
      ++R.DeadlineMissed;
      return false;
    }
  }
  return false;
}

} // namespace

Expected<LoadGenReport>
elide::loadgen::runProvisioningLoadGen(const LoadGenConfig &Config) {
  if (Config.Workers == 0)
    return makeError("loadgen needs at least one worker");
  if (Config.Mode == LoadGenMode::Open && Config.ArrivalPerSec <= 0)
    return makeError("open-loop mode needs a positive arrival rate");
  size_t Batch = std::max<size_t>(1, std::min(Config.BatchSize,
                                              BatchMaxSessions));

  QuoteMint Mint(Config.Seed + 100);
  if (Error E = Mint.build())
    return E;

  SecretMeta Meta;
  Bytes Data = bytesOfString("LOADGEN-SECRET-TEXT-SECTION");
  Meta.DataLength = Data.size();
  Meta.RestoreOffset = 0x40;

  AuthServerConfig SC;
  SC.AuthorityKey = Mint.Authority.publicKey();
  SC.ExpectedMrEnclave = Mint.Mr;
  SC.Meta = Meta;
  SC.SecretData = Data;
  SC.RngSeed = Config.Seed + 200;
  SC.SessionShards = Config.SessionShards;
  SC.MaxSessions = Config.MaxSessions
                       ? Config.MaxSessions
                       : std::max<size_t>(16384, 2 * Config.TargetSessions);
  AuthServer Server(std::move(SC));

  TcpServerConfig TC;
  TC.WorkerThreads = Config.ServerWorkers;
  // Ballast connections idle across the whole run; they must outlive it.
  TC.ReadTimeoutMs = Config.DurationMs + 120000;
  TC.MaxConnections = Config.MaxConnections;
  TC.ForcePollBackend = Config.ForcePollBackend;
  ELIDE_TRY(std::unique_ptr<TcpServer> Tcp, TcpServer::start(Server, TC));

  // Ballast pool: persistent idle sockets the reactor must keep holding
  // while it serves the throughput traffic below.
  std::vector<int> Ballast;
  Ballast.reserve(Config.Connections);
  for (size_t I = 0; I < Config.Connections; ++I) {
    int Fd = connectBallast(Tcp->port());
    if (Fd < 0)
      break; // EMFILE or backlog pressure: report what we actually held.
    Ballast.push_back(Fd);
  }

  // Client channels. The batch HELLO channel stays clean; the record
  // channel optionally suffers seeded faults (that is the path with
  // retries to soak).
  TcpClientTransport HelloLink("127.0.0.1", Tcp->port());
  TcpClientTransport RecordLink("127.0.0.1", Tcp->port());
  FaultPlan Plan;
  Plan.Seed = Config.FaultSeed;
  Plan.FaultPerMille = Config.FaultPerMille;
  FaultInjectingTransport FaultyRecords(RecordLink, Plan);
  Transport &Records =
      Config.FaultPerMille ? static_cast<Transport &>(FaultyRecords)
                           : static_cast<Transport &>(RecordLink);

  AttestationBatcherConfig BC;
  BC.MaxBatch = Batch;
  BC.MaxDelayMs = 5;
  AttestationBatcher Batcher(
      HelloLink,
      [&Mint](const std::array<uint8_t, 32> &,
              const std::array<uint8_t, 32> &Binding) {
        return Mint.quoteFor(Binding);
      },
      BC);
  std::array<uint8_t, 32> GroupKey{};
  std::memcpy(GroupKey.data(), Mint.Mr.data(), 32);

  // The measured phase.
  std::atomic<size_t> Succeeded{0};
  std::atomic<size_t> PeakSessions{0};
  std::atomic<size_t> ArrivalTicket{0};
  std::vector<WorkerResult> Results(Config.Workers);
  std::vector<std::thread> Crew;
  Crew.reserve(Config.Workers);
  Clock::time_point Start = Clock::now();
  Clock::time_point End = Start + std::chrono::milliseconds(Config.DurationMs);

  for (size_t W = 0; W < Config.Workers; ++W) {
    Crew.emplace_back([&, W] {
      Drbg Rng(Config.Seed ^ (0x574b5230ULL + W * 0x9e3779b9ULL));
      WorkerResult &R = Results[W];
      for (;;) {
        if (Config.TargetSessions &&
            Succeeded.load(std::memory_order_relaxed) >= Config.TargetSessions)
          break;
        if (Config.Mode == LoadGenMode::Open) {
          // Open loop: claim the next arrival slot and honor its schedule
          // even if the server is drowning -- that is the point.
          size_t Ticket = ArrivalTicket.fetch_add(1);
          Clock::time_point Due =
              Start + std::chrono::microseconds(static_cast<int64_t>(
                          1e6 * static_cast<double>(Ticket) /
                          Config.ArrivalPerSec));
          if (Due >= End)
            break;
          std::this_thread::sleep_until(Due);
        } else if (Clock::now() >= End) {
          break;
        }
        Timer T;
        bool Ok = restoreOnce(Batcher, GroupKey, Records, Rng, Config, R);
        if (Ok) {
          R.LatenciesMs.push_back(T.elapsedMs());
          Succeeded.fetch_add(1, std::memory_order_relaxed);
          size_t Live = Server.stats().LiveSessions;
          size_t Peak = PeakSessions.load(std::memory_order_relaxed);
          while (Live > Peak &&
                 !PeakSessions.compare_exchange_weak(Peak, Live))
            ;
        } else {
          ++R.Failed;
        }
      }
    });
  }
  for (std::thread &T : Crew)
    T.join();
  double MeasuredS =
      std::chrono::duration<double>(Clock::now() - Start).count();

  for (int Fd : Ballast)
    ::close(Fd);

  LoadGenReport Report;
  Report.Config = Config;
  Report.Config.BatchSize = Batch;
  std::vector<double> All;
  size_t RecordAttempts = 0;
  for (WorkerResult &R : Results) {
    All.insert(All.end(), R.LatenciesMs.begin(), R.LatenciesMs.end());
    Report.RestoresFailed += R.Failed;
    Report.ShedObserved += R.Shed;
    Report.RestoresTotal += R.LatenciesMs.size();
    Report.DeadlineMissed += R.DeadlineMissed;
    RecordAttempts += R.RecordAttempts;
  }
  Report.DeadlineMissRate =
      RecordAttempts ? static_cast<double>(Report.DeadlineMissed) /
                           static_cast<double>(RecordAttempts)
                     : 0;
  size_t Attempts = 0;
  for (WorkerResult &R : Results)
    Attempts += R.Attempts;
  std::sort(All.begin(), All.end());
  Report.DurationS = MeasuredS;
  Report.RestoresPerSec =
      MeasuredS > 0 ? static_cast<double>(Report.RestoresTotal) / MeasuredS : 0;
  Report.LatencyMs.P50 = percentile(All, 0.50);
  Report.LatencyMs.P95 = percentile(All, 0.95);
  Report.LatencyMs.P99 = percentile(All, 0.99);
  Report.LatencyMs.Mean = summarize(All).Mean;
  Report.ShedRate = Attempts ? static_cast<double>(Report.ShedObserved) /
                                   static_cast<double>(Attempts)
                             : 0;

  AttestationBatcher::Stats BS = Batcher.stats();
  Report.BatchRounds = BS.Rounds;
  Report.BatchSessionsMinted = BS.Sessions;
  Report.BatchAmortization = BS.amortization();
  Report.MaxConcurrentSessions = PeakSessions.load();
  Report.FaultsInjected = Config.FaultPerMille
                              ? FaultyRecords.stats().Injected
                              : 0;
  Report.Server = Server.stats();
  Report.Reactor = Tcp->reactor().stats();
  Report.MaxConcurrentConnections = Report.Reactor.MaxConcurrentConnections;
  Tcp->stop();
  return Report;
}

std::string elide::loadgen::renderLoadGenJson(const LoadGenReport &R) {
  char Buf[8192];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\n"
      "  \"bench\": \"provisioning_loadgen\",\n"
      "  \"version\": 1,\n"
      "  \"config\": {\n"
      "    \"mode\": \"%s\",\n"
      "    \"duration_ms\": %d,\n"
      "    \"workers\": %zu,\n"
      "    \"connections\": %zu,\n"
      "    \"target_sessions\": %zu,\n"
      "    \"batch\": %zu,\n"
      "    \"arrival_per_sec\": %.1f,\n"
      "    \"session_shards\": %zu,\n"
      "    \"fault_seed\": %llu,\n"
      "    \"fault_per_mille\": %u,\n"
      "    \"force_poll\": %s\n"
      "  },\n"
      "  \"results\": {\n"
      "    \"restores_total\": %zu,\n"
      "    \"restores_failed\": %zu,\n"
      "    \"duration_s\": %.3f,\n"
      "    \"restores_per_sec\": %.2f,\n"
      "    \"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f, "
      "\"mean\": %.3f},\n"
      "    \"shed_rate\": %.4f,\n"
      "    \"deadline_missed\": %zu,\n"
      "    \"deadline_miss_rate\": %.4f,\n"
      "    \"shed_by_class\": {\"critical\": %zu, \"default\": %zu, "
      "\"sheddable\": %zu},\n"
      "    \"batch\": {\"rounds\": %zu, \"sessions_minted\": %zu, "
      "\"amortization\": %.2f},\n"
      "    \"max_concurrent_sessions\": %zu,\n"
      "    \"max_concurrent_connections\": %zu,\n"
      "    \"faults_injected\": %zu,\n"
      "    \"server\": {\"handshakes_completed\": %zu, "
      "\"batch_handshakes\": %zu, \"live_sessions\": %zu, "
      "\"sessions_evicted\": %zu, \"frames_served\": %zu, "
      "\"connections_accepted\": %zu, \"connections_shed\": %zu, "
      "\"read_timeouts\": %zu, \"write_timeouts\": %zu, "
      "\"used_epoll\": %s, \"wakeups\": %zu}\n"
      "  }\n"
      "}\n",
      R.Config.Mode == LoadGenMode::Open ? "open" : "closed",
      R.Config.DurationMs, R.Config.Workers, R.Config.Connections,
      R.Config.TargetSessions, R.Config.BatchSize, R.Config.ArrivalPerSec,
      R.Config.SessionShards,
      static_cast<unsigned long long>(R.Config.FaultSeed),
      R.Config.FaultPerMille, R.Config.ForcePollBackend ? "true" : "false",
      R.RestoresTotal, R.RestoresFailed, R.DurationS, R.RestoresPerSec,
      R.LatencyMs.P50, R.LatencyMs.P95, R.LatencyMs.P99, R.LatencyMs.Mean,
      R.ShedRate, R.DeadlineMissed, R.DeadlineMissRate, R.Server.ShedCritical,
      R.Server.ShedDefault, R.Server.ShedSheddable, R.BatchRounds,
      R.BatchSessionsMinted, R.BatchAmortization,
      R.MaxConcurrentSessions, R.MaxConcurrentConnections, R.FaultsInjected,
      R.Server.HandshakesCompleted, R.Server.BatchHandshakes,
      R.Server.LiveSessions, R.Server.SessionsEvicted,
      R.Reactor.FramesServed, R.Reactor.ConnectionsAccepted,
      R.Reactor.ConnectionsShed, R.Reactor.ReadTimeouts,
      R.Reactor.WriteTimeouts, R.Reactor.UsedEpoll ? "true" : "false",
      R.Reactor.Wakeups);
  return Buf;
}

Error elide::loadgen::writeLoadGenJson(const LoadGenReport &Report,
                                       const std::string &Path) {
  std::string Json = renderLoadGenJson(Report);
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return makeError("cannot open " + Path + " for writing");
  size_t Wrote = std::fwrite(Json.data(), 1, Json.size(), F);
  if (std::fclose(F) != 0 || Wrote != Json.size())
    return makeError("short write to " + Path);
  return Error::success();
}
