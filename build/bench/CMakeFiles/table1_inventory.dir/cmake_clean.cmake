file(REMOVE_RECURSE
  "CMakeFiles/table1_inventory.dir/Table1Inventory.cpp.o"
  "CMakeFiles/table1_inventory.dir/Table1Inventory.cpp.o.d"
  "table1_inventory"
  "table1_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
