
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elide/Bridge.cpp" "src/elide/CMakeFiles/elide_core.dir/Bridge.cpp.o" "gcc" "src/elide/CMakeFiles/elide_core.dir/Bridge.cpp.o.d"
  "/root/repo/src/elide/HostRuntime.cpp" "src/elide/CMakeFiles/elide_core.dir/HostRuntime.cpp.o" "gcc" "src/elide/CMakeFiles/elide_core.dir/HostRuntime.cpp.o.d"
  "/root/repo/src/elide/Pipeline.cpp" "src/elide/CMakeFiles/elide_core.dir/Pipeline.cpp.o" "gcc" "src/elide/CMakeFiles/elide_core.dir/Pipeline.cpp.o.d"
  "/root/repo/src/elide/Sanitizer.cpp" "src/elide/CMakeFiles/elide_core.dir/Sanitizer.cpp.o" "gcc" "src/elide/CMakeFiles/elide_core.dir/Sanitizer.cpp.o.d"
  "/root/repo/src/elide/SecretMeta.cpp" "src/elide/CMakeFiles/elide_core.dir/SecretMeta.cpp.o" "gcc" "src/elide/CMakeFiles/elide_core.dir/SecretMeta.cpp.o.d"
  "/root/repo/src/elide/TrustedLib.cpp" "src/elide/CMakeFiles/elide_core.dir/TrustedLib.cpp.o" "gcc" "src/elide/CMakeFiles/elide_core.dir/TrustedLib.cpp.o.d"
  "/root/repo/src/elide/Whitelist.cpp" "src/elide/CMakeFiles/elide_core.dir/Whitelist.cpp.o" "gcc" "src/elide/CMakeFiles/elide_core.dir/Whitelist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sgx/CMakeFiles/elide_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/elide_server.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/elide_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/elide_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/elc/CMakeFiles/elide_elc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/elide_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/elide_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
