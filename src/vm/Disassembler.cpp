//===- vm/Disassembler.cpp - SVM bytecode disassembler ------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Disassembler.h"

#include <cstdio>

using namespace elide;

const char *elide::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Illegal:
    return "illegal";
  case Opcode::Nop:
    return "nop";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::DivU:
    return "divu";
  case Opcode::DivS:
    return "divs";
  case Opcode::RemU:
    return "remu";
  case Opcode::RemS:
    return "rems";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::ShrL:
    return "shrl";
  case Opcode::ShrA:
    return "shra";
  case Opcode::AddI:
    return "addi";
  case Opcode::MulI:
    return "muli";
  case Opcode::AndI:
    return "andi";
  case Opcode::OrI:
    return "ori";
  case Opcode::XorI:
    return "xori";
  case Opcode::ShlI:
    return "shli";
  case Opcode::ShrLI:
    return "shrli";
  case Opcode::ShrAI:
    return "shrai";
  case Opcode::LdI:
    return "ldi";
  case Opcode::LdIH:
    return "ldih";
  case Opcode::Seq:
    return "seq";
  case Opcode::Sne:
    return "sne";
  case Opcode::SltU:
    return "sltu";
  case Opcode::SltS:
    return "slts";
  case Opcode::SleU:
    return "sleu";
  case Opcode::SleS:
    return "sles";
  case Opcode::LdBU:
    return "ldbu";
  case Opcode::LdBS:
    return "ldbs";
  case Opcode::LdHU:
    return "ldhu";
  case Opcode::LdHS:
    return "ldhs";
  case Opcode::LdWU:
    return "ldwu";
  case Opcode::LdWS:
    return "ldws";
  case Opcode::LdD:
    return "ldd";
  case Opcode::StB:
    return "stb";
  case Opcode::StH:
    return "sth";
  case Opcode::StW:
    return "stw";
  case Opcode::StD:
    return "std";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Beqz:
    return "beqz";
  case Opcode::Bnez:
    return "bnez";
  case Opcode::Call:
    return "call";
  case Opcode::CallR:
    return "callr";
  case Opcode::Ret:
    return "ret";
  case Opcode::Ocall:
    return "ocall";
  case Opcode::Tcall:
    return "tcall";
  case Opcode::Halt:
    return "halt";
  case Opcode::Trap:
    return "trap";
  }
  return "illegal";
}

bool elide::isValidOpcode(uint8_t Value) {
  Opcode Op = static_cast<Opcode>(Value);
  // Opcode 0 (Illegal) is a defined encoding but not a valid instruction.
  if (Op == Opcode::Illegal)
    return false;
  return std::string(opcodeName(Op)) != "illegal";
}

std::vector<DecodedSlot> elide::decodeRegion(BytesView Code,
                                             uint64_t BaseAddr) {
  std::vector<DecodedSlot> Out;
  Out.reserve(Code.size() / SvmInstrSize);
  for (size_t Off = 0; Off + SvmInstrSize <= Code.size();
       Off += SvmInstrSize) {
    DecodedSlot S;
    S.Pc = BaseAddr + Off;
    S.I = decodeInstruction(Code.data() + Off);
    S.Valid = isValidOpcode(Code[Off]);
    Out.push_back(S);
  }
  return Out;
}

bool elide::isConditionalBranch(Opcode Op) {
  return Op == Opcode::Beqz || Op == Opcode::Bnez;
}

bool elide::isLoadOpcode(Opcode Op) {
  return Op >= Opcode::LdBU && Op <= Opcode::LdD;
}

bool elide::isStoreOpcode(Opcode Op) {
  return Op >= Opcode::StB && Op <= Opcode::StD;
}

bool elide::endsStraightLine(Opcode Op) {
  switch (Op) {
  case Opcode::Jmp:
  case Opcode::Ret:
  case Opcode::Halt:
  case Opcode::Trap:
  case Opcode::Illegal:
    return true;
  default:
    return false;
  }
}

std::optional<uint64_t> elide::directTarget(const Instruction &I,
                                            uint64_t Pc) {
  switch (I.Op) {
  case Opcode::Jmp:
  case Opcode::Beqz:
  case Opcode::Bnez:
  case Opcode::Call:
    return Pc + static_cast<uint64_t>(static_cast<int64_t>(I.Imm));
  default:
    return std::nullopt;
  }
}

std::string elide::disassembleInstruction(const Instruction &I, uint64_t Pc) {
  char Buf[128];
  const char *Name = opcodeName(I.Op);
  switch (I.Op) {
  case Opcode::Illegal:
  case Opcode::Nop:
  case Opcode::Ret:
  case Opcode::Halt:
    std::snprintf(Buf, sizeof(Buf), "%s", Name);
    break;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::DivU:
  case Opcode::DivS:
  case Opcode::RemU:
  case Opcode::RemS:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::ShrL:
  case Opcode::ShrA:
  case Opcode::Seq:
  case Opcode::Sne:
  case Opcode::SltU:
  case Opcode::SltS:
  case Opcode::SleU:
  case Opcode::SleS:
    std::snprintf(Buf, sizeof(Buf), "%-6s r%u, r%u, r%u", Name, I.Rd, I.Rs1,
                  I.Rs2);
    break;
  case Opcode::AddI:
  case Opcode::MulI:
  case Opcode::AndI:
  case Opcode::OrI:
  case Opcode::XorI:
  case Opcode::ShlI:
  case Opcode::ShrLI:
  case Opcode::ShrAI:
    std::snprintf(Buf, sizeof(Buf), "%-6s r%u, r%u, %d", Name, I.Rd, I.Rs1,
                  I.Imm);
    break;
  case Opcode::LdI:
  case Opcode::LdIH:
    std::snprintf(Buf, sizeof(Buf), "%-6s r%u, %d", Name, I.Rd, I.Imm);
    break;
  case Opcode::LdBU:
  case Opcode::LdBS:
  case Opcode::LdHU:
  case Opcode::LdHS:
  case Opcode::LdWU:
  case Opcode::LdWS:
  case Opcode::LdD:
    std::snprintf(Buf, sizeof(Buf), "%-6s r%u, [r%u%+d]", Name, I.Rd, I.Rs1,
                  I.Imm);
    break;
  case Opcode::StB:
  case Opcode::StH:
  case Opcode::StW:
  case Opcode::StD:
    std::snprintf(Buf, sizeof(Buf), "%-6s [r%u%+d], r%u", Name, I.Rs1, I.Imm,
                  I.Rs2);
    break;
  case Opcode::Jmp:
  case Opcode::Call:
    std::snprintf(Buf, sizeof(Buf), "%-6s 0x%llx", Name,
                  static_cast<unsigned long long>(
                      Pc + static_cast<uint64_t>(static_cast<int64_t>(I.Imm))));
    break;
  case Opcode::Beqz:
  case Opcode::Bnez:
    std::snprintf(Buf, sizeof(Buf), "%-6s r%u, 0x%llx", Name, I.Rs1,
                  static_cast<unsigned long long>(
                      Pc + static_cast<uint64_t>(static_cast<int64_t>(I.Imm))));
    break;
  case Opcode::CallR:
    std::snprintf(Buf, sizeof(Buf), "%-6s r%u", Name, I.Rs1);
    break;
  case Opcode::Ocall:
  case Opcode::Tcall:
  case Opcode::Trap:
    std::snprintf(Buf, sizeof(Buf), "%-6s #%d", Name, I.Imm);
    break;
  }
  return Buf;
}

std::string elide::disassemble(BytesView Code, uint64_t BaseAddr) {
  std::string Out;
  char Line[160];
  for (const DecodedSlot &S : decodeRegion(Code, BaseAddr)) {
    if (!S.Valid && S.I.Op != Opcode::Illegal) {
      std::snprintf(
          Line, sizeof(Line), "%08llx:  .word 0x%016llx\n",
          static_cast<unsigned long long>(S.Pc),
          static_cast<unsigned long long>(
              readLE64(Code.data() + (S.Pc - BaseAddr))));
    } else {
      std::snprintf(Line, sizeof(Line), "%08llx:  %s\n",
                    static_cast<unsigned long long>(S.Pc),
                    disassembleInstruction(S.I, S.Pc).c_str());
    }
    Out += Line;
  }
  return Out;
}

size_t elide::countValidInstructionSlots(BytesView Code) {
  size_t Count = 0;
  for (const DecodedSlot &S : decodeRegion(Code, /*BaseAddr=*/0))
    if (S.Valid)
      ++Count;
  return Count;
}
