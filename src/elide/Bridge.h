//===- elide/Bridge.h - Trusted/untrusted call tables ---------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fixed dispatch indices shared by the Elc compiler (which resolves
/// `extern tcall` / `extern ocall` declarations), the trusted runtime
/// (which registers the tcall implementations), and the untrusted host
/// runtime (which implements the ocalls). The paper's public API surface
/// maps directly: one ecall (`elide_restore`) and the ocalls
/// `elide_server_request` / `elide_read_file`, plus the sealing and
/// quoting plumbing the paper describes but left unimplemented.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_ELIDE_BRIDGE_H
#define SGXELIDE_ELIDE_BRIDGE_H

#include "sgx/SgxTypes.h"

#include <cstdint>

namespace elide {

/// Untrusted (ocall) function indices.
enum OcallIndex : uint32_t {
  /// One request/response round trip with the authentication server.
  OcallServerRequest = 0,
  /// Reads the (encrypted) enclave.secret.data file (local-data mode).
  OcallReadFile = 1,
  /// Reads the sealed-secrets blob from the previous launch ("" if none).
  OcallReadSealed = 2,
  /// Persists the sealed-secrets blob (paper step 7).
  OcallWriteSealed = 3,
  /// Passes an EREPORT to the quoting enclave, returns the quote (the
  /// aesm shuttling role).
  OcallGetQuote = 4,
  /// Debug printing (honored only for debug enclaves).
  OcallPrint = 5,
  /// First index available to applications.
  OcallAppBase = 32,
};

/// Trusted (tcall) library function indices -- the "statically linked SGX
/// SDK libraries" whose symbols dominate the paper's 170-entry whitelist.
enum TcallIndex : uint32_t {
  TcallReadRand = 0,
  TcallMemcpy = 1,
  TcallMemset = 2,
  TcallDebugPrint = 3,
  TcallChannelInit = 4,
  TcallFetchMeta = 5,
  TcallFetchData = 6,
  TcallDecryptLocal = 7,
  TcallRestoreAnchor = 8,
  TcallMetaOffset = 9,
  TcallMetaEncrypted = 10,
  TcallMetaDataLen = 11,
  TcallSealStore = 12,
  TcallUnsealLoad = 13,
  TcallProtectText = 14,
  TcallIsSgx2 = 15,
  /// First index available to applications.
  TcallAppBase = 32,
};

/// Serialization of a local-attestation report for the quoting ocall.
Bytes serializeReport(const sgx::Report &R);
Expected<sgx::Report> deserializeReport(BytesView Data);

} // namespace elide

#endif // SGXELIDE_ELIDE_BRIDGE_H
