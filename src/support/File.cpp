//===- support/File.cpp - Whole-file read and write ------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/File.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>

using namespace elide;

Expected<Bytes> elide::readFileBytes(const std::string &Path) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return makeError("cannot open " + Path + ": " + std::strerror(errno));
  Bytes Out;
  uint8_t Chunk[65536];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Out.insert(Out.end(), Chunk, Chunk + N);
  bool Failed = std::ferror(F) != 0;
  std::fclose(F);
  if (Failed)
    return makeError("read error on " + Path);
  return Out;
}

Error elide::writeFileBytes(const std::string &Path, BytesView Data) {
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return makeError("cannot create " + Path + ": " + std::strerror(errno));
  size_t Written = Data.empty() ? 0 : std::fwrite(Data.data(), 1, Data.size(), F);
  bool Failed = Written != Data.size();
  if (std::fclose(F) != 0)
    Failed = true;
  if (Failed)
    return makeError("write error on " + Path);
  return Error::success();
}

bool elide::fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISREG(St.st_mode);
}

void elide::removeFile(const std::string &Path) { ::unlink(Path.c_str()); }
