//===- vm/Interpreter.cpp - SVM bytecode interpreter -------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Interpreter.h"

using namespace elide;

const char *elide::trapKindName(TrapKind Kind) {
  switch (Kind) {
  case TrapKind::Halt:
    return "halt";
  case TrapKind::IllegalInstruction:
    return "illegal instruction";
  case TrapKind::MemoryFault:
    return "memory fault";
  case TrapKind::UnalignedPc:
    return "unaligned pc";
  case TrapKind::DivideByZero:
    return "divide by zero";
  case TrapKind::CallDepthExceeded:
    return "call depth exceeded";
  case TrapKind::CallStackUnderflow:
    return "call stack underflow";
  case TrapKind::HandlerFault:
    return "handler fault";
  case TrapKind::ExplicitTrap:
    return "explicit trap";
  case TrapKind::BudgetExhausted:
    return "instruction budget exhausted";
  }
  return "unknown";
}

Expected<Bytes> Vm::readBytes(uint64_t Addr, uint64_t Len) {
  Bytes Out(Len);
  if (Error E = Bus.read(Addr, MutableBytesView(Out)))
    return E;
  return Out;
}

Error Vm::writeBytes(uint64_t Addr, BytesView Data) {
  return Bus.write(Addr, Data);
}

ExecResult Vm::run(uint64_t StartPc, uint64_t Budget) {
  ExecResult Result;
  uint64_t Pc = StartPc;
  CallStack.clear();

  auto Fault = [&](TrapKind Kind, std::string Message) {
    Result.Kind = Kind;
    Result.Pc = Pc;
    Result.Message = std::move(Message);
    return Result;
  };

  for (uint64_t Count = 0;; ++Count) {
    if (Count >= Budget)
      return Fault(TrapKind::BudgetExhausted,
                   "budget of " + std::to_string(Budget) + " exhausted");
    if (Pc % SvmInstrSize != 0)
      return Fault(TrapKind::UnalignedPc, "pc 0x" + std::to_string(Pc));

    uint8_t Raw[8];
    if (Error E = Bus.fetch(Pc, Raw))
      return Fault(TrapKind::MemoryFault, "fetch: " + E.message());
    Instruction I = decodeInstruction(Raw);
    Result.InstructionsRetired = Count + 1;

    uint64_t A = reg(I.Rs1);
    uint64_t B = reg(I.Rs2);
    int64_t ImmS = I.Imm;
    uint64_t NextPc = Pc + SvmInstrSize;

    switch (I.Op) {
    case Opcode::Illegal:
      return Fault(TrapKind::IllegalInstruction,
                   "opcode 0 at pc 0x" + std::to_string(Pc) +
                       " (sanitized or corrupted code?)");
    case Opcode::Nop:
      break;

    case Opcode::Add:
      setReg(I.Rd, A + B);
      break;
    case Opcode::Sub:
      setReg(I.Rd, A - B);
      break;
    case Opcode::Mul:
      setReg(I.Rd, A * B);
      break;
    case Opcode::DivU:
      if (B == 0)
        return Fault(TrapKind::DivideByZero, "divu");
      setReg(I.Rd, A / B);
      break;
    case Opcode::DivS:
      if (B == 0)
        return Fault(TrapKind::DivideByZero, "divs");
      if (static_cast<int64_t>(A) == INT64_MIN && static_cast<int64_t>(B) == -1)
        setReg(I.Rd, A); // Overflow wraps, like hardware.
      else
        setReg(I.Rd, static_cast<uint64_t>(static_cast<int64_t>(A) /
                                           static_cast<int64_t>(B)));
      break;
    case Opcode::RemU:
      if (B == 0)
        return Fault(TrapKind::DivideByZero, "remu");
      setReg(I.Rd, A % B);
      break;
    case Opcode::RemS:
      if (B == 0)
        return Fault(TrapKind::DivideByZero, "rems");
      if (static_cast<int64_t>(A) == INT64_MIN && static_cast<int64_t>(B) == -1)
        setReg(I.Rd, 0);
      else
        setReg(I.Rd, static_cast<uint64_t>(static_cast<int64_t>(A) %
                                           static_cast<int64_t>(B)));
      break;
    case Opcode::And:
      setReg(I.Rd, A & B);
      break;
    case Opcode::Or:
      setReg(I.Rd, A | B);
      break;
    case Opcode::Xor:
      setReg(I.Rd, A ^ B);
      break;
    case Opcode::Shl:
      setReg(I.Rd, A << (B & 63));
      break;
    case Opcode::ShrL:
      setReg(I.Rd, A >> (B & 63));
      break;
    case Opcode::ShrA:
      setReg(I.Rd,
             static_cast<uint64_t>(static_cast<int64_t>(A) >> (B & 63)));
      break;

    case Opcode::AddI:
      setReg(I.Rd, A + static_cast<uint64_t>(ImmS));
      break;
    case Opcode::MulI:
      setReg(I.Rd, A * static_cast<uint64_t>(ImmS));
      break;
    case Opcode::AndI:
      setReg(I.Rd, A & static_cast<uint64_t>(ImmS));
      break;
    case Opcode::OrI:
      setReg(I.Rd, A | static_cast<uint64_t>(ImmS));
      break;
    case Opcode::XorI:
      setReg(I.Rd, A ^ static_cast<uint64_t>(ImmS));
      break;
    case Opcode::ShlI:
      setReg(I.Rd, A << (I.Imm & 63));
      break;
    case Opcode::ShrLI:
      setReg(I.Rd, A >> (I.Imm & 63));
      break;
    case Opcode::ShrAI:
      setReg(I.Rd,
             static_cast<uint64_t>(static_cast<int64_t>(A) >> (I.Imm & 63)));
      break;

    case Opcode::LdI:
      setReg(I.Rd, static_cast<uint64_t>(ImmS));
      break;
    case Opcode::LdIH:
      setReg(I.Rd, (reg(I.Rd) & 0xffffffffULL) |
                       (static_cast<uint64_t>(static_cast<uint32_t>(I.Imm))
                        << 32));
      break;

    case Opcode::Seq:
      setReg(I.Rd, A == B);
      break;
    case Opcode::Sne:
      setReg(I.Rd, A != B);
      break;
    case Opcode::SltU:
      setReg(I.Rd, A < B);
      break;
    case Opcode::SltS:
      setReg(I.Rd, static_cast<int64_t>(A) < static_cast<int64_t>(B));
      break;
    case Opcode::SleU:
      setReg(I.Rd, A <= B);
      break;
    case Opcode::SleS:
      setReg(I.Rd, static_cast<int64_t>(A) <= static_cast<int64_t>(B));
      break;

    case Opcode::LdBU:
    case Opcode::LdBS:
    case Opcode::LdHU:
    case Opcode::LdHS:
    case Opcode::LdWU:
    case Opcode::LdWS:
    case Opcode::LdD: {
      static const unsigned Sizes[] = {1, 1, 2, 2, 4, 4, 8};
      unsigned Idx = static_cast<unsigned>(I.Op) -
                     static_cast<unsigned>(Opcode::LdBU);
      unsigned Size = Sizes[Idx];
      uint8_t Buf[8] = {0};
      uint64_t Addr = A + static_cast<uint64_t>(ImmS);
      if (Error E = Bus.read(Addr, MutableBytesView(Buf, Size)))
        return Fault(TrapKind::MemoryFault, "load: " + E.message());
      uint64_t V = readLE64(Buf);
      switch (I.Op) {
      case Opcode::LdBS:
        V = static_cast<uint64_t>(static_cast<int64_t>(static_cast<int8_t>(V)));
        break;
      case Opcode::LdHS:
        V = static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int16_t>(V)));
        break;
      case Opcode::LdWS:
        V = static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int32_t>(V)));
        break;
      default:
        break;
      }
      setReg(I.Rd, V);
      break;
    }

    case Opcode::StB:
    case Opcode::StH:
    case Opcode::StW:
    case Opcode::StD: {
      static const unsigned Sizes[] = {1, 2, 4, 8};
      unsigned Size = Sizes[static_cast<unsigned>(I.Op) -
                            static_cast<unsigned>(Opcode::StB)];
      uint8_t Buf[8];
      writeLE64(Buf, B);
      uint64_t Addr = A + static_cast<uint64_t>(ImmS);
      if (Error E = Bus.write(Addr, BytesView(Buf, Size)))
        return Fault(TrapKind::MemoryFault, "store: " + E.message());
      break;
    }

    case Opcode::Jmp:
      NextPc = Pc + static_cast<uint64_t>(ImmS);
      break;
    case Opcode::Beqz:
      if (A == 0)
        NextPc = Pc + static_cast<uint64_t>(ImmS);
      break;
    case Opcode::Bnez:
      if (A != 0)
        NextPc = Pc + static_cast<uint64_t>(ImmS);
      break;
    case Opcode::Call:
      if (CallStack.size() >= MaxCallDepth)
        return Fault(TrapKind::CallDepthExceeded,
                     "depth " + std::to_string(MaxCallDepth));
      CallStack.push_back(Pc + SvmInstrSize);
      NextPc = Pc + static_cast<uint64_t>(ImmS);
      break;
    case Opcode::CallR:
      if (CallStack.size() >= MaxCallDepth)
        return Fault(TrapKind::CallDepthExceeded,
                     "depth " + std::to_string(MaxCallDepth));
      CallStack.push_back(Pc + SvmInstrSize);
      NextPc = A;
      break;
    case Opcode::Ret:
      if (CallStack.empty())
        return Fault(TrapKind::CallStackUnderflow, "ret at top frame");
      NextPc = CallStack.back();
      CallStack.pop_back();
      break;

    case Opcode::Ocall: {
      if (!Ocall)
        return Fault(TrapKind::HandlerFault, "no ocall handler installed");
      Expected<uint64_t> R = Ocall(static_cast<uint32_t>(I.Imm), *this);
      if (!R)
        return Fault(TrapKind::HandlerFault, "ocall: " + R.errorMessage());
      setReg(1, *R);
      break;
    }
    case Opcode::Tcall: {
      if (!Tcall)
        return Fault(TrapKind::HandlerFault, "no tcall handler installed");
      Expected<uint64_t> R = Tcall(static_cast<uint32_t>(I.Imm), *this);
      if (!R)
        return Fault(TrapKind::HandlerFault, "tcall: " + R.errorMessage());
      setReg(1, *R);
      break;
    }

    case Opcode::Halt:
      Result.Kind = TrapKind::Halt;
      Result.Pc = Pc;
      Result.ReturnValue = reg(1);
      return Result;
    case Opcode::Trap:
      Result.TrapCode = I.Imm;
      return Fault(TrapKind::ExplicitTrap, "code " + std::to_string(I.Imm));

    default:
      return Fault(TrapKind::IllegalInstruction,
                   "undefined opcode 0x" + std::to_string(Raw[0]));
    }

    Pc = NextPc;
  }
}
