file(REMOVE_RECURSE
  "CMakeFiles/cloud_crypto.dir/CloudCrypto.cpp.o"
  "CMakeFiles/cloud_crypto.dir/CloudCrypto.cpp.o.d"
  "cloud_crypto"
  "cloud_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
