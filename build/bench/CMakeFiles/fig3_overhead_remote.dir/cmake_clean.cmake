file(REMOVE_RECURSE
  "CMakeFiles/fig3_overhead_remote.dir/Fig3OverheadRemote.cpp.o"
  "CMakeFiles/fig3_overhead_remote.dir/Fig3OverheadRemote.cpp.o.d"
  "fig3_overhead_remote"
  "fig3_overhead_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_overhead_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
