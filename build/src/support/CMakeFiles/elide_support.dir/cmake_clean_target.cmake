file(REMOVE_RECURSE
  "libelide_support.a"
)
