//===- analysis/MetadataLeakCheck.cpp - AUD2xx metadata-leak check ---------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Metadata-leak check: even with every secret byte zeroed, the ELF
/// side tables can still describe the elided code -- a symbol names a
/// function and pins its exact [start, end), a string table keeps the
/// name after the symbol is gone, a relocation records an address inside
/// the redacted range. DynSGX-style reproductions leak exactly this way.
///
///   AUD201  symtab entry names a non-whitelisted function;
///   AUD202  string-table bytes that no surviving symbol references;
///   AUD203  relocation entry targets an elided range;
///   AUD204  `__bridge_X` symbol with no ecall-manifest entry `X`;
///   AUD205  ecall-manifest entry with no bridge symbol.
///
//===----------------------------------------------------------------------===//

#include "analysis/Audit.h"

#include <algorithm>
#include <sstream>

namespace elide {
namespace analysis {

namespace {

constexpr uint64_t SymEntSize = 24;  // Elf64_Sym
constexpr uint64_t RelaEntSize = 24; // Elf64_Rela

bool startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

std::set<std::string> parseManifest(const ElfImage &Image,
                                    const std::string &SectionName) {
  std::set<std::string> Names;
  const ElfSection *S = Image.sectionByName(SectionName);
  if (!S)
    return Names;
  Bytes Raw = Image.sectionContents(*S);
  std::string Line;
  for (uint8_t B : Raw) {
    if (B == '\n') {
      if (!Line.empty())
        Names.insert(Line);
      Line.clear();
    } else if (B != 0) {
      Line.push_back((char)B);
    }
  }
  if (!Line.empty())
    Names.insert(Line);
  return Names;
}

} // namespace

void checkMetadataLeaks(const AuditInput &Input, const AuditOptions &,
                        DiagnosticEngine &Engine) {
  const ElfImage &Image = *Input.Image;
  const ElfSection *Text = Image.sectionByName(Input.TextSection);

  // --- AUD201: symbols naming non-whitelisted functions. ---
  if (Input.HaveWhitelist) {
    uint64_t Index = 0; // Parsed index; table index is +1 (null symbol).
    for (const ElfSymbol &Sym : Image.symbols()) {
      ++Index;
      if (!Sym.isFunction() || Sym.Name.empty())
        continue;
      if (Input.WhitelistNames.count(Sym.Name))
        continue;
      if (startsWith(Sym.Name, Input.BridgePrefix))
        continue; // Orphan bridges are AUD204's finding.
      Engine.report(AudElidedSymbolNamed, Severity::Error,
                    "symbol table names elided function '" + Sym.Name +
                        "' and pins its boundary [0x" +
                        [&] {
                          std::ostringstream O;
                          O << std::hex << Sym.Value << ", 0x"
                            << Sym.Value + Sym.Size << ")";
                          return O.str();
                        }(),
                    ".symtab", Index * SymEntSize, SymEntSize, Sym.Name);
    }
  }

  // --- AUD202: string-table residue. ---
  // Recompute which strtab bytes the surviving symtab entries reference;
  // any other nonzero byte is a name that outlived its symbol.
  for (const ElfSection &SymTab : Image.sections()) {
    if (SymTab.Type != SHT_SYMTAB)
      continue;
    if (SymTab.Link >= Image.sections().size())
      continue;
    const ElfSection &StrTab = Image.sections()[SymTab.Link];
    Bytes Syms = Image.sectionContents(SymTab);
    Bytes Strs = Image.sectionContents(StrTab);
    std::vector<bool> Referenced(Strs.size(), false);
    if (!Referenced.empty())
      Referenced[0] = true; // The shared empty string.
    for (uint64_t Off = 0; Off + SymEntSize <= Syms.size();
         Off += SymEntSize) {
      uint32_t NameOff = readLE32(Syms.data() + Off);
      for (uint64_t I = NameOff; I < Strs.size(); ++I) {
        Referenced[I] = true;
        if (Strs[I] == 0)
          break;
      }
    }
    uint64_t Run = 0, RunStart = 0;
    size_t Reported = 0;
    for (uint64_t I = 0; I <= Strs.size(); ++I) {
      if (I < Strs.size() && Strs[I] != 0 && !Referenced[I]) {
        if (Run == 0)
          RunStart = I;
        ++Run;
        continue;
      }
      if (Run > 0 && ++Reported <= 8) {
        std::string Leak((const char *)Strs.data() + RunStart,
                         (size_t)std::min<uint64_t>(Run, 64));
        Engine.report(AudStrtabResidue, Severity::Error,
                      "string table retains '" + Leak +
                          "' though no symbol references it",
                      StrTab.Name, RunStart, Run);
      }
      Run = 0;
    }
  }

  // --- AUD203: relocations targeting elided ranges. ---
  std::vector<ElidedRegion> Regions = effectiveElidedRegions(Input, nullptr);
  if (Text) {
    for (const ElfSection &S : Image.sections()) {
      if (!startsWith(S.Name, ".rel") || S.Type == SHT_NOBITS)
        continue;
      Bytes Raw = Image.sectionContents(S);
      for (uint64_t Off = 0; Off + RelaEntSize <= Raw.size();
           Off += RelaEntSize) {
        uint64_t ROffset = readLE64(Raw.data() + Off);
        if (ROffset < Text->Addr || ROffset >= Text->Addr + Text->Size)
          continue;
        uint64_t Rel = ROffset - Text->Addr;
        for (const ElidedRegion &R : Regions) {
          if (Rel < R.Offset || Rel >= R.Offset + R.Length)
            continue;
          Engine.report(AudRelocationLeak, Severity::Error,
                        "relocation entry targets elided range" +
                            (R.Name.empty() ? std::string()
                                            : " of '" + R.Name + "'") +
                            "; relocations outline redacted code",
                        S.Name, Off, RelaEntSize, R.Name);
          break;
        }
      }
    }
  }

  // --- AUD204/AUD205: bridge symbols vs the ecall manifest. ---
  std::set<std::string> Manifest =
      parseManifest(Image, Input.EcallManifestSection);
  for (const ElfSymbol &Sym : Image.symbols()) {
    if (!startsWith(Sym.Name, Input.BridgePrefix))
      continue;
    std::string Export = Sym.Name.substr(Input.BridgePrefix.size());
    if (!Manifest.count(Export))
      Engine.report(AudOrphanBridge, Severity::Warning,
                    "bridge symbol '" + Sym.Name +
                        "' has no ecall-manifest entry; it is dead "
                        "surface that still names a function",
                    Input.EcallManifestSection, 0, 0, Sym.Name);
  }
  if (!Image.symbols().empty()) {
    for (const std::string &Export : Manifest) {
      if (!Image.symbolByName(Input.BridgePrefix + Export))
        Engine.report(AudManifestUnbound, Severity::Warning,
                      "ecall-manifest entry '" + Export +
                          "' has no bridge symbol; the loader cannot "
                          "bind this export",
                      Input.EcallManifestSection, 0, 0, Export);
    }
  }
}

} // namespace analysis
} // namespace elide
