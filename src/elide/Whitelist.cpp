//===- elide/Whitelist.cpp - Whitelist generation -------------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "elide/Whitelist.h"

#include "elc/Compiler.h"
#include "elf/ElfImage.h"

using namespace elide;

Expected<Whitelist> Whitelist::fromDummyEnclave(BytesView DummyElfFile) {
  ELIDE_TRY(ElfImage Image, ElfImage::parse(toBytes(DummyElfFile)));
  Whitelist W;
  for (const ElfSymbol &Sym : Image.symbols())
    if (Sym.isFunction())
      W.Names.insert(Sym.Name);
  if (W.Names.empty())
    return makeError("dummy enclave defines no functions; cannot derive a "
                     "whitelist");
  return W;
}

bool Whitelist::contains(const std::string &FunctionName) const {
  if (FunctionName.rfind(elc::bridgePrefix(), 0) == 0)
    return true;
  return Names.count(FunctionName) > 0;
}

std::string Whitelist::serialize() const {
  std::string Out;
  for (const std::string &Name : Names)
    Out += Name + "\n";
  return Out;
}

Expected<Whitelist> Whitelist::deserialize(const std::string &Text) {
  Whitelist W;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Name = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    if (!Name.empty())
      W.Names.insert(Name);
  }
  if (W.Names.empty())
    return makeError("whitelist file is empty");
  return W;
}
