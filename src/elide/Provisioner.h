//===- elide/Provisioner.h - Multi-endpoint failover provisioning ----------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The provisioning resilience layer between the untrusted host runtime
/// and the developer's authentication servers. The paper's availability
/// model is a single remote exchange at startup; this layer grows it into
/// an ordered failover chain of secret sources:
///
///   endpoint[0] -> endpoint[1] -> ... -> sealed cache -> local data blob
///
/// Each remote endpoint sits behind its own circuit breaker
/// (closed / open / half-open with a single probe request and a jittered
/// cool-down), so a dead or drowning server stops costing a connect
/// timeout on every exchange. A server that sheds load with a typed
/// OVERLOADED frame parks the breaker for exactly the advertised
/// retry-after instead of counting toward endpoint death. Optionally, a
/// hedged second request fires at the next endpoint once the first has
/// been in flight past a latency threshold.
///
/// The sealed-cache and local-blob tail of the chain lives in the enclave
/// (TrustedLib's obtain-secrets order) and in ElideHost's crash-consistent
/// cache persistence; the `Provisioner` is the remote head of the chain
/// and implements `Transport`, so it drops into `ElideHost` unchanged.
///
/// Every transition is reported through a typed `ProvisionEvent` callback
/// so callers, tools, and the chaos suite can observe the chain.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_ELIDE_PROVISIONER_H
#define SGXELIDE_ELIDE_PROVISIONER_H

#include "crypto/Drbg.h"
#include "server/Transport.h"

#include <array>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace elide {

//===----------------------------------------------------------------------===//
// Provision events
//===----------------------------------------------------------------------===//

/// Transitions the provisioning chain reports. Endpoint* events describe
/// one attempt; Breaker* events describe breaker state changes; Cache*
/// events come from ElideHost's sealed-cache persistence; Hedge* events
/// trace the latency-hedging path.
enum class ProvisionEventKind {
  EndpointAttempt,    ///< A request is about to hit this endpoint.
  EndpointSuccess,    ///< The endpoint answered.
  EndpointFailure,    ///< The endpoint failed (typed Errc attached).
  EndpointOverloaded, ///< The endpoint shed load (RetryAfterMs attached).
  EndpointSkipped,    ///< Breaker open: the endpoint was not tried.
  BreakerOpened,      ///< Breaker tripped (Detail says why).
  BreakerHalfOpen,    ///< Cool-down elapsed; a probe request is admitted.
  BreakerClosed,      ///< Probe succeeded; endpoint back in rotation.
  HedgeLaunched,      ///< Latency threshold passed; second request fired.
  HedgeWon,           ///< The hedged request beat the primary.
  HedgeSuppressed,    ///< Retry budget low: hedging auto-disabled.
  RetryBudgetSpent,   ///< A failover retry or hedge spent one token.
  RetryBudgetExhausted, ///< The chain-wide retry budget ran dry mid-walk.
  FailoverExhausted,  ///< Every remote endpoint failed or was skipped.
  CacheWritten,       ///< Sealed cache persisted crash-consistently.
  CacheWriteFailed,   ///< Sealed cache persist failed (Detail attached).
  CacheQuarantined,   ///< Torn/corrupt cache moved aside, chain falls through.
};

/// Human-readable event kind name (logs, tests).
const char *provisionEventKindName(ProvisionEventKind Kind);

/// One observed transition.
struct ProvisionEvent {
  ProvisionEventKind Kind;
  /// Index of the endpoint in chain order; -1 for cache events.
  int EndpointIndex = -1;
  /// The endpoint's name ("host:port" or a caller-chosen label).
  std::string Endpoint;
  /// Typed failure kind for EndpointFailure.
  TransportErrc Errc = TransportErrc::None;
  /// Server retry-after hint for EndpointOverloaded.
  uint32_t RetryAfterMs = 0;
  /// Free-form context (error message, quarantine path, probe verdict).
  std::string Detail;
};

/// Observation hook. May be invoked from hedge worker threads; the
/// callback must be thread-safe if hedging is enabled.
using ProvisionEventCallback = std::function<void(const ProvisionEvent &)>;

//===----------------------------------------------------------------------===//
// Circuit breaker
//===----------------------------------------------------------------------===//

/// Breaker states, classic semantics: Closed passes traffic, Open
/// refuses it while a cool-down runs, HalfOpen admits one probe whose
/// outcome decides between Closed and another Open round.
enum class BreakerState { Closed, Open, HalfOpen };

/// Human-readable breaker state name.
const char *breakerStateName(BreakerState State);

/// Per-endpoint breaker tuning.
struct BreakerConfig {
  /// Consecutive hard failures that trip Closed -> Open.
  int FailureThreshold = 3;
  /// Base cool-down before an Open breaker admits a half-open probe.
  int CooldownMs = 1000;
  /// Cool-downs get up to 50% deterministic jitter on top of the base so
  /// a fleet recovering from one outage does not probe in lockstep; this
  /// seeds the jitter source.
  uint64_t JitterSeed = 1;
  /// Cool-down used for an OVERLOADED verdict when the server supplied no
  /// usable retry-after hint.
  uint32_t DefaultOverloadCooldownMs = 100;
};

/// One endpoint's breaker. Not internally synchronized -- the Provisioner
/// serializes access under its own mutex.
class CircuitBreaker {
public:
  explicit CircuitBreaker(const BreakerConfig &Config)
      : Config(Config), Jitter(Config.JitterSeed ^ 0x4252454bULL) {}

  /// Gate for one request. Closed: admit. Open: admit only once the
  /// cool-down elapsed (transitioning to HalfOpen). HalfOpen: admit one
  /// probe at a time.
  bool admit();

  /// The admitted request succeeded: any state -> Closed.
  void onSuccess();

  /// The admitted request failed hard. Closed counts toward the
  /// threshold; a HalfOpen probe failure re-opens immediately.
  void onFailure();

  /// The endpoint shed load: park Open for the advertised retry-after
  /// (plus jitter) without counting toward endpoint death.
  void onOverloaded(uint32_t RetryAfterMs);

  BreakerState state() const { return State; }
  int consecutiveFailures() const { return ConsecutiveFailures; }

private:
  using Clock = std::chrono::steady_clock;

  /// Enters Open for \p BaseMs plus deterministic jitter.
  void open(int BaseMs);

  BreakerConfig Config;
  Drbg Jitter;
  BreakerState State = BreakerState::Closed;
  int ConsecutiveFailures = 0;
  bool ProbeInFlight = false;
  Clock::time_point ReopenAt{};
};

//===----------------------------------------------------------------------===//
// Provisioner
//===----------------------------------------------------------------------===//

/// Chain-level tuning.
struct ProvisionerConfig {
  /// Breaker template applied to every endpoint (the jitter seed is
  /// perturbed per endpoint so cool-downs de-correlate).
  BreakerConfig Breaker;
  /// Hedging: when >= 0 and a further endpoint is available, a request
  /// still in flight after this many milliseconds fires a second request
  /// at the next endpoint and the first answer wins. < 0 disables.
  int HedgeAfterMs = -1;

  //===- Chain-wide retry budget (metastable-failure defense) -------------===//
  //
  // Retries and hedges amplify offered load exactly when the servers are
  // slowest; unbounded, that positive feedback loop is what turns a
  // transient overload into a metastable collapse. The budget is a token
  // bucket shared by the whole chain: the first endpoint attempt of a
  // roundTrip is free, every further attempt (failover retry or hedge)
  // spends one token, and only *successes* earn tokens back -- so during
  // an outage the amplification factor decays toward 1 instead of
  // multiplying by the chain length.

  /// Initial token balance; < 0 disables the budget entirely (legacy
  /// unbounded-retry behavior, the ablation baseline).
  double RetryBudgetInitial = -1.0;
  /// Token balance ceiling (bounds the burst after a long healthy run).
  double RetryBudgetMax = 10.0;
  /// Tokens earned per successful exchange. 0.1 means sustained retries
  /// are capped near 10% of successful traffic -- the classic retry
  /// budget ratio.
  double RetryBudgetEarnPerSuccess = 0.1;
  /// Hedging is an optimization, not a correctness tool: auto-disable it
  /// while the balance sits below this watermark so speculative load is
  /// the first thing shed when the budget tightens.
  double HedgeDisableBelow = 2.0;
};

/// The remote head of the failover chain. Implements `Transport`, so the
/// enclave's server exchanges route through it transparently. Thread-safe;
/// endpoints must outlive the Provisioner.
class Provisioner : public Transport {
public:
  explicit Provisioner(ProvisionerConfig Config = ProvisionerConfig());
  ~Provisioner() override;

  /// Appends an endpoint to the chain (tried in insertion order).
  void addEndpoint(std::string Name, Transport *Link);

  /// Installs the observation hook (replacing any previous one).
  void setEventCallback(ProvisionEventCallback Callback);

  size_t endpointCount() const;

  /// The breaker state of endpoint \p Index (tests and tools read this).
  BreakerState breakerState(size_t Index) const;

  /// Current retry-budget token balance (tests, tools, bench JSON).
  /// Returns RetryBudgetMax-equivalent semantics only when the budget is
  /// enabled; with the budget disabled this reports +infinity-like
  /// behavior as -1.
  double retryBudget() const;

  /// Walks the chain: skips open breakers, tries endpoints in order
  /// (hedging when configured), classifies overload distinctly from
  /// death, and returns the first answer -- or a typed error
  /// (`Overloaded`, `BreakerOpen`, or `AllEndpointsFailed`) when the
  /// whole remote chain is down.
  Expected<Bytes> roundTrip(BytesView Request) override;

private:
  struct Endpoint {
    std::string Name;
    Transport *Link;
    CircuitBreaker Breaker;
  };

  /// Outcome of one endpoint attempt, normalized: an overloaded frame or
  /// typed Overloaded error becomes {Overloaded, RetryAfterMs}.
  struct Outcome {
    Expected<Bytes> Result;
    bool IsOverloaded = false;
    uint32_t RetryAfterMs = 0;
  };

  void emit(const ProvisionEvent &Event) const;
  /// Runs the breaker gate for endpoint \p I under the lock, emitting
  /// skip/half-open events. Returns true when the endpoint may be tried.
  bool admitLocked(size_t I);
  /// Spends one retry-budget token (no-op when the budget is disabled).
  /// Returns false, emitting RetryBudgetExhausted, when the bucket is
  /// empty. Caller holds Mutex.
  bool spendTokenLocked(const char *What);
  /// Credits the budget for a successful exchange. Caller holds Mutex.
  void earnTokenLocked();
  /// Normalizes a raw transport result into an Outcome.
  static Outcome classify(Expected<Bytes> Result);
  /// Updates breaker + events for endpoint \p I after an attempt.
  void recordOutcome(size_t I, const Outcome &O);
  /// Plain attempt against endpoint \p I (no hedging).
  Outcome attempt(size_t I, BytesView Request);
  /// Hedged attempt: primary \p I, hedge partner \p J.
  Outcome hedgedAttempt(size_t I, size_t J, BytesView Request,
                        bool &PartnerConsumed);

  ProvisionerConfig Config;
  mutable std::mutex Mutex;
  std::vector<Endpoint> Endpoints;          ///< Guarded by Mutex.
  ProvisionEventCallback Callback;          ///< Guarded by Mutex.
  std::vector<std::thread> Stragglers;      ///< Guarded by Mutex.
  bool BudgetEnabled = false;               ///< Set once in the ctor.
  double RetryBudget = 0.0;                 ///< Guarded by Mutex.
};

//===----------------------------------------------------------------------===//
// Attestation batching
//===----------------------------------------------------------------------===//

/// One minted session handed back to a batch joiner.
struct BatchJoinResult {
  uint64_t Sid = 0;
  X25519Key ServerPub{};
};

/// Tuning for the client-side attestation batcher.
struct AttestationBatcherConfig {
  /// Sessions per HELLO-BATCH round; a group flushes as soon as it
  /// reaches this many joiners (clamped to the protocol's
  /// BatchMaxSessions).
  size_t MaxBatch = 64;
  /// A partial group older than this flushes anyway, bounding the latency
  /// a lone joiner pays for amortization it is not getting.
  int MaxDelayMs = 5;
};

/// Produces a serialized quote whose report data commits (in its first 32
/// bytes) to \p BindingHash, attesting the enclave identified by
/// \p GroupKey. In production this is an enclave quote request; tests and
/// the load generator forge quotes with the scratch-enclave machinery.
using BatchQuoteFn = std::function<Expected<Bytes>(
    const std::array<uint8_t, 32> &GroupKey,
    const std::array<uint8_t, 32> &BindingHash)>;

/// Client-side attestation batching (the DynSGX-style amortization from
/// the server's HELLO-BATCH frame, driven from the fleet side): joiners
/// that share a measurement pool into one group, and one attestation
/// round -- one quote, one signature verification on the server --
/// provisions the whole group. Joiners with different measurements never
/// share a round (the binding hash would not verify), so mixed fleets
/// split into one group per measurement automatically.
///
/// `join` is thread-safe and blocking: it parks the caller until the
/// round containing its key completes. A full group is flushed inline by
/// the joiner that filled it; partial groups are flushed by a background
/// ager after `MaxDelayMs`.
class AttestationBatcher {
public:
  /// \p Link carries the HELLO-BATCH exchange and must be thread-safe.
  AttestationBatcher(Transport &Link, BatchQuoteFn QuoteFn,
                     const AttestationBatcherConfig &Config =
                         AttestationBatcherConfig());
  /// Flushes any still-pending groups (so no joiner hangs), then joins
  /// the ager thread. Do not destroy while calls to `join` are entering.
  ~AttestationBatcher();

  AttestationBatcher(const AttestationBatcher &) = delete;
  AttestationBatcher &operator=(const AttestationBatcher &) = delete;

  /// Joins the group for \p GroupKey with \p ClientPub and blocks until
  /// that group's attestation round completes, returning this joiner's
  /// minted session.
  Expected<BatchJoinResult> join(const std::array<uint8_t, 32> &GroupKey,
                                 const X25519Key &ClientPub);

  /// Flushes every pending group now (tests and drain paths).
  void flushAll();

  /// Amortization accounting.
  struct Stats {
    size_t Rounds = 0;         ///< HELLO-BATCH rounds attempted.
    size_t Sessions = 0;       ///< Sessions minted by successful rounds.
    size_t FailedRounds = 0;   ///< Rounds whose exchange or parse failed.
    /// Sessions per round -- the factor the batching buys over
    /// one-HELLO-per-session provisioning.
    double amortization() const {
      return Rounds ? static_cast<double>(Sessions) / Rounds : 0.0;
    }
  };
  Stats stats() const;

private:
  struct Waiter {
    X25519Key ClientPub{};
    bool Done = false;
    Error Failure;            ///< Set when the round failed.
    BatchJoinResult Result;   ///< Valid when Done && !Failure.
  };
  struct Group {
    std::vector<std::shared_ptr<Waiter>> Waiters;
    std::chrono::steady_clock::time_point OpenedAt;
  };

  /// Runs one attestation round for \p G (outside the lock) and
  /// distributes results to its waiters.
  void flushGroup(const std::array<uint8_t, 32> &Key, Group &&G);
  void agerThread();

  Transport &Link;
  BatchQuoteFn QuoteFn;
  AttestationBatcherConfig Config;

  mutable std::mutex Mutex;
  std::condition_variable Cv;
  std::map<std::array<uint8_t, 32>, Group> Groups; ///< Guarded by Mutex.
  bool Stopping = false;                           ///< Guarded by Mutex.
  size_t Rounds = 0;                               ///< Guarded by Mutex.
  size_t Sessions = 0;                             ///< Guarded by Mutex.
  size_t FailedRounds = 0;                         ///< Guarded by Mutex.
  std::thread Ager;
};

} // namespace elide

#endif // SGXELIDE_ELIDE_PROVISIONER_H
