//===- crypto/X25519.h - X25519 key agreement (RFC 7748) ------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// X25519 Diffie-Hellman. The enclave and the authentication server derive
/// the paper's "secure channel" keys from an X25519 exchange bound to the
/// attestation quote (real SGX remote attestation similarly embeds an ECDH
/// public key in the KE messages).
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_CRYPTO_X25519_H
#define SGXELIDE_CRYPTO_X25519_H

#include "support/Bytes.h"

#include <array>

namespace elide {

/// A 32-byte X25519 scalar or curve point.
using X25519Key = std::array<uint8_t, 32>;

/// Computes the scalar multiplication Scalar * Point.
X25519Key x25519(const X25519Key &Scalar, const X25519Key &Point);

/// Computes the public key for \p Scalar (scalar times the base point 9).
X25519Key x25519PublicKey(const X25519Key &Scalar);

} // namespace elide

#endif // SGXELIDE_CRYPTO_X25519_H
