//===- crypto/Sha256.h - SHA-256 (FIPS 180-4) ------------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming SHA-256. Used for enclave measurement (the EEXTEND emulation
/// hashes 256-byte chunks through this), HMAC/HKDF, and sealing-key
/// derivation.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_CRYPTO_SHA256_H
#define SGXELIDE_CRYPTO_SHA256_H

#include "support/Bytes.h"

#include <array>

namespace elide {

/// A 32-byte SHA-256 digest.
using Sha256Digest = std::array<uint8_t, 32>;

/// Incremental SHA-256 context.
///
/// Typical use: construct, `update()` any number of times, `final()` once.
/// The context may be reused after `reset()`.
class Sha256 {
public:
  Sha256() { reset(); }

  /// Restores the initial hash state.
  void reset();

  /// Absorbs \p Data into the hash state.
  void update(BytesView Data);

  /// Finishes the hash and returns the digest. The context must be
  /// reset() before further use.
  Sha256Digest final();

  /// One-shot convenience: SHA-256 of \p Data.
  static Sha256Digest hash(BytesView Data);

private:
  void compress(const uint8_t *Block);

  uint32_t State[8];
  uint64_t TotalBytes;
  uint8_t Buffer[64];
  size_t BufferLen;
};

} // namespace elide

#endif // SGXELIDE_CRYPTO_SHA256_H
