//===- tests/framework/VmDiff.h - SVM backend differential harness ----------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential testing for the pluggable SVM execution engines: a
/// structure-aware random-program generator plus a runner that executes
/// the same code on every backend and demands bit-identical outcomes --
/// ExecResult (kind, pc, return value, trap code, retired count, message
/// text), all 32 registers, and the final memory image.
///
/// Programs are raw SVM code loaded at address 0 of a FlatMemory; the
/// runner installs deterministic tcall/ocall handlers, one of which
/// rewrites program code mid-run (the restore-write scenario the threaded
/// engine's invalidation exists for). Any byte string is a valid input --
/// the ISA traps on garbage -- so the same harness backs both the seeded
/// `ctest -L vmdiff` sweep and the `fuzz_vmdiff` libFuzzer target.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_TESTS_FRAMEWORK_VMDIFF_H
#define SGXELIDE_TESTS_FRAMEWORK_VMDIFF_H

#include "crypto/Drbg.h"
#include "vm/ExecBackend.h"

#include <array>
#include <string>

namespace elide {
namespace vmdiff {

/// Knobs for program generation and execution.
struct ProgramOptions {
  /// Upper bound on generated program length, in instructions. Also the
  /// modulus for the restore-tcall's target slot, so keep it stable when
  /// reproducing a divergence.
  unsigned MaxInstructions = 96;
  /// Flat RAM size; code sits at [0, MaxInstructions*8), the generator's
  /// data pointers aim at the upper half.
  uint64_t MemorySize = 64 * 1024;
  /// Per-run instruction budget. Deliberately small: generated loops are
  /// bounded by it, and budget-boundary trap parity gets exercised a lot.
  uint64_t Budget = 4096;
  /// Emit stores through arbitrary register values (out-of-bounds faults).
  bool AllowWildStores = true;
  /// Emit stores aimed into the code region (self-modification).
  bool AllowSelfModify = true;
};

/// Generates a random SVM program: valid control flow biased to stay in
/// range, bounded loops (via the budget), cmp+branch / LdI+LdIH /
/// AddI+mem shapes the threaded engine fuses, memory traffic through
/// data-region base registers, tcall/ocall sites, and a sprinkling of
/// raw garbage instructions. Returns raw code bytes (load at pc 0).
Bytes generateProgram(Drbg &Rng, const ProgramOptions &Opts);

/// Everything observable about one program execution.
struct Outcome {
  ExecResult Exec;
  std::array<uint64_t, SvmRegCount> Regs;
  Bytes Memory;
};

/// Executes \p Code on a fresh FlatMemory under the given backend, with
/// the harness's deterministic tcall/ocall handlers installed.
Outcome runProgram(BytesView Code, VmBackendKind Kind,
                   const ProgramOptions &Opts);

/// Runs \p Code on every backend and compares each against the reference
/// (SwitchBackend). Returns an empty string when all agree, otherwise a
/// human-readable description of the first divergence.
std::string diffProgram(BytesView Code, const ProgramOptions &Opts);

} // namespace vmdiff
} // namespace elide

#endif // SGXELIDE_TESTS_FRAMEWORK_VMDIFF_H
