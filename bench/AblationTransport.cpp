//===- bench/AblationTransport.cpp - Transport-path restore ablation ----------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What the network path adds to restoration latency. The paper measures
/// restore cost over a live socket to the developer's authentication
/// server; this ablation separates the layers: in-process loopback (pure
/// protocol cost), real TCP on localhost (framing + sockets + the
/// concurrent server), and TCP under injected faults with client retry
/// (the paper's flaky-network / denial-of-service edge, short of a full
/// outage).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "server/FaultInjection.h"
#include "sgx/EnclaveLoader.h"
#include "support/Stats.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace elide;
using namespace elide::bench;

namespace {

constexpr int PaperRuns = 10;

/// Like BenchScenario::launchSanitized, but over an arbitrary transport.
BenchScenario::Launch launchOver(BenchScenario &S, Transport *Link) {
  BenchScenario::Launch L;
  Expected<std::unique_ptr<sgx::Enclave>> E =
      sgx::loadEnclave(*S.Device, S.Artifacts.SanitizedElf,
                       S.Artifacts.SanitizedSig, S.Options.Layout);
  if (!E)
    std::abort();
  L.E = E.takeValue();
  L.Host = std::make_unique<ElideHost>(Link, S.Qe.get());
  L.Host->attach(*L.E);
  return L;
}

/// One cold restore over \p Link; returns wall milliseconds.
double restoreOnce(BenchScenario &S, Transport *Link,
                   const RestorePolicy &Policy) {
  BenchScenario::Launch L = launchOver(S, Link);
  Timer T;
  Expected<uint64_t> Status = L.Host->restore(*L.E, Policy);
  double Ms = T.elapsedMs();
  if (!Status || *Status != 0)
    std::abort();
  return Ms;
}

FaultPlan lossyPlan(uint64_t Seed) {
  FaultPlan Plan;
  Plan.Seed = Seed;
  Plan.FaultPerMille = 200; // One call in five suffers.
  Plan.RateKinds = {FaultKind::Drop, FaultKind::Delay, FaultKind::Truncate,
                    FaultKind::DisconnectMidFrame};
  Plan.DelayMs = 1;
  return Plan;
}

RestorePolicy patientPolicy() {
  RestorePolicy Policy;
  Policy.MaxAttempts = 16;
  Policy.RetryDelayMs = 1;
  return Policy;
}

} // namespace

int main(int argc, char **argv) {
  for (const apps::AppSpec &App : apps::allApps()) {
    benchmark::RegisterBenchmark(
        ("BM_RestoreLoopback/" + App.Name).c_str(),
        [&App](benchmark::State &State) {
          BenchScenario &S = scenarioFor(App.Name, SecretStorage::Remote);
          for (auto _ : State)
            benchmark::DoNotOptimize(
                restoreOnce(S, S.Link.get(), RestorePolicy{}));
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(PaperRuns);
    benchmark::RegisterBenchmark(
        ("BM_RestoreTcp/" + App.Name).c_str(),
        [&App](benchmark::State &State) {
          BenchScenario &S = scenarioFor(App.Name, SecretStorage::Remote);
          Expected<std::unique_ptr<TcpServer>> Tcp =
              TcpServer::start(*S.Server);
          if (!Tcp)
            std::abort();
          TcpClientTransport Client("127.0.0.1", (*Tcp)->port());
          for (auto _ : State)
            benchmark::DoNotOptimize(
                restoreOnce(S, &Client, RestorePolicy{}));
          (*Tcp)->stop();
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(PaperRuns);
    benchmark::RegisterBenchmark(
        ("BM_RestoreTcpLossy/" + App.Name).c_str(),
        [&App](benchmark::State &State) {
          BenchScenario &S = scenarioFor(App.Name, SecretStorage::Remote);
          Expected<std::unique_ptr<TcpServer>> Tcp =
              TcpServer::start(*S.Server);
          if (!Tcp)
            std::abort();
          TcpClientTransport Client("127.0.0.1", (*Tcp)->port());
          FaultInjectingTransport Lossy(Client, lossyPlan(99));
          for (auto _ : State)
            benchmark::DoNotOptimize(restoreOnce(S, &Lossy, patientPolicy()));
          (*Tcp)->stop();
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(PaperRuns);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printTableHeader("Ablation: transport path -- first-launch restore latency "
                   "by channel");
  std::printf("%-9s %14s %14s %18s %10s\n", "Bench", "Loopback (ms)",
              "TCP (ms)", "TCP lossy (ms)", "Faults");
  std::printf("%.*s\n", 70,
              "---------------------------------------------------------------"
              "-----------");

  for (const apps::AppSpec &App : apps::allApps()) {
    BenchScenario &S = scenarioFor(App.Name, SecretStorage::Remote);

    std::vector<double> Loop, Tcp, Lossy;
    for (int Run = 0; Run < PaperRuns; ++Run)
      Loop.push_back(restoreOnce(S, S.Link.get(), RestorePolicy{}));

    Expected<std::unique_ptr<TcpServer>> Net = TcpServer::start(*S.Server);
    if (!Net)
      std::abort();
    TcpClientTransport Client("127.0.0.1", (*Net)->port());
    for (int Run = 0; Run < PaperRuns; ++Run)
      Tcp.push_back(restoreOnce(S, &Client, RestorePolicy{}));

    FaultInjectingTransport Faulty(Client, lossyPlan(7));
    for (int Run = 0; Run < PaperRuns; ++Run)
      Lossy.push_back(restoreOnce(S, &Faulty, patientPolicy()));
    size_t Injected = Faulty.stats().Injected;
    (*Net)->stop();

    Summary L = summarize(Loop);
    Summary T = summarize(Tcp);
    Summary F = summarize(Lossy);
    std::printf("%-9s %8.2f±%4.2f %8.2f±%4.2f %12.2f±%4.2f %10zu\n",
                App.Name.c_str(), L.Mean, L.StdDev, T.Mean, T.StdDev, F.Mean,
                F.StdDev, Injected);
  }
  std::printf("\nExpected shape: TCP adds connect+framing cost over loopback; "
              "the lossy channel\npays extra round trips but every run still "
              "converges to a successful restore.\n");
  return 0;
}
