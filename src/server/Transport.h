//===- server/Transport.h - Client/server transports -----------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request/response transports between the untrusted host runtime and the
/// authentication server. `LoopbackTransport` calls the server in-process
/// (used by tests and benchmarks -- the paper likewise ran client and
/// server on one machine over sockets with "very little network latency");
/// `TcpServer`/`TcpClientTransport` run the same byte protocol over real
/// TCP sockets with length-prefixed frames.
///
/// The paper observes that a missing server is a denial of service on the
/// protected application, so this layer is built for failure: the server
/// multiplexes many connections on an event-driven reactor (epoll with a
/// poll fallback; handler CPU work on a fixed worker pool) with
/// per-operation read/write deadlines and drains gracefully on `stop()`;
/// the client bounds connect/IO time and retries with exponential backoff
/// and deterministic jitter, surfacing a typed `TransportErrc` when the
/// budget is exhausted.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_SERVER_TRANSPORT_H
#define SGXELIDE_SERVER_TRANSPORT_H

#include "crypto/Drbg.h"
#include "server/AuthServer.h"
#include "server/Reactor.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>

namespace elide {

//===----------------------------------------------------------------------===//
// Typed transport errors
//===----------------------------------------------------------------------===//

// `TransportErrc` itself lives in support/Error.h alongside the one
// shared retryable-vs-terminal table (`retryabilityOf`), so the restorer's
// and the transport's failure vocabularies classify in one place.

/// Creates a transport failure tagged with \p Errc.
Error makeTransportError(TransportErrc Errc, std::string Message);

/// The transport error kind of \p E (None for untagged/foreign errors).
TransportErrc transportErrcOf(const Error &E);

/// Same, reading the code of an errored `Expected` without consuming it.
template <typename T> TransportErrc transportErrcOf(const Expected<T> &E) {
  int Code = E.errorCode();
  return (Code >= static_cast<int>(TransportErrc::ConnectFailed) &&
          Code <= static_cast<int>(TransportErrcLast))
             ? static_cast<TransportErrc>(Code)
             : TransportErrc::None;
}

/// Extracts a "retry-after-ms=<n>" hint from an Overloaded error message
/// (the transports embed the server's hint there so it survives the typed
/// error path). nullopt when absent or malformed.
std::optional<uint32_t> retryAfterHintOf(const std::string &Message);

/// Synchronous request/response channel to the authentication server.
class Transport {
public:
  virtual ~Transport();

  /// Sends one request frame and waits for the response frame.
  virtual Expected<Bytes> roundTrip(BytesView Request) = 0;
};

/// Calls an in-process server directly.
class LoopbackTransport : public Transport {
public:
  explicit LoopbackTransport(AuthServer &Server) : Server(Server) {}
  Expected<Bytes> roundTrip(BytesView Request) override;

private:
  AuthServer &Server;
};

//===----------------------------------------------------------------------===//
// TcpServer
//===----------------------------------------------------------------------===//

/// Tuning knobs for the concurrent TCP server.
struct TcpServerConfig {
  /// Worker threads running AuthServer::handle concurrently (IO itself is
  /// multiplexed on one reactor thread regardless).
  size_t WorkerThreads = 8;
  /// Deadline for reading one full frame off a connection.
  int ReadTimeoutMs = 5000;
  /// Deadline for writing one full frame to a connection.
  int WriteTimeoutMs = 5000;
  /// listen(2) backlog.
  int Backlog = 64;
  /// Largest frame the server will accept.
  uint32_t MaxFrameBytes = 64u << 20;
  /// Connection cap: accepted connections beyond this many concurrently
  /// served are shed with an OVERLOADED frame instead of being queued
  /// behind a saturated worker pool. 0 = no cap.
  size_t MaxConnections = 0;
  /// Retry-after hint carried by shed responses.
  uint32_t OverloadRetryAfterMs = 100;
  /// Selects the poll(2) event-loop backend instead of epoll (tests).
  bool ForcePollBackend = false;
};

/// Usage counters for the TCP server (tests and benches read these).
struct TcpServerStats {
  size_t ConnectionsAccepted = 0;
  size_t ConnectionsShed = 0;
  size_t FramesServed = 0;
  size_t ReadTimeouts = 0;
  size_t WriteTimeouts = 0;
};

/// Serves an AuthServer over TCP: a thin binding of `ReactorServer` (the
/// event-driven transport core, see server/Reactor.h) to
/// `AuthServer::handle`. Frames are u32-length-prefixed; binds to
/// 127.0.0.1 on an ephemeral port. `stop()` drains gracefully: the
/// listener closes immediately, accepted-but-unserved connections get an
/// OVERLOADED frame, in-flight exchanges finish (bounded by their IO
/// deadlines), then the threads join.
class TcpServer {
public:
  /// Starts the reactor and worker pool on background threads.
  static Expected<std::unique_ptr<TcpServer>>
  start(AuthServer &Server, const TcpServerConfig &Config = TcpServerConfig());
  ~TcpServer();

  /// The bound port.
  uint16_t port() const { return Impl->port(); }

  /// Stops accepting, drains in-flight connections, joins all threads.
  /// Idempotent.
  void stop();

  /// Snapshot of the usage counters.
  TcpServerStats stats() const;

  /// The underlying reactor (tests read its extended stats).
  const ReactorServer &reactor() const { return *Impl; }

private:
  TcpServer() = default;

  std::unique_ptr<ReactorServer> Impl;
};

//===----------------------------------------------------------------------===//
// TcpClientTransport
//===----------------------------------------------------------------------===//

/// Client-side failure policy: deadlines per operation plus a bounded
/// retry budget with exponential backoff and deterministic jitter.
struct TcpClientConfig {
  /// Deadline for establishing the connection.
  int ConnectTimeoutMs = 2000;
  /// Deadline for each frame read/write.
  int IoTimeoutMs = 5000;
  /// Total connection attempts per roundTrip (1 = no retry).
  int MaxAttempts = 3;
  /// First retry delay; doubles each retry.
  int BackoffBaseMs = 25;
  /// Backoff ceiling.
  int BackoffMaxMs = 1000;
  /// Seed for the jitter source (deterministic for reproducible tests).
  uint64_t JitterSeed = 1;
  /// When true, an OVERLOADED answer is retried on this endpoint with the
  /// server's retry-after hint as a floor under the backoff wait, instead
  /// of surfacing immediately as a typed error. Leave false in front of a
  /// failover chain (the Provisioner moves endpoints faster than the hint
  /// elapses); set true for single-endpoint clients that have nowhere
  /// else to go.
  bool RetryOverloaded = false;
};

/// TCP client side: connects per roundTrip (the restorer makes only a
/// handful of requests, so connection reuse is not worth statefulness --
/// and the session survives across connections because the server keys
/// the session id, not the socket; that same property makes retrying a
/// failed exchange on a fresh connection safe).
///
/// Deadline-aware: a request wrapped in an envelope frame (see
/// server/Protocol.h) carries its remaining budget through the retry
/// loop -- connect/IO timeouts and backoff waits are clamped to what is
/// left, each attempt's envelope is re-stamped with the true remainder,
/// and a budget that lapses mid-loop surfaces as the terminal
/// `TransportErrc::DeadlineExceeded` instead of burning attempts a
/// caller can no longer use.
class TcpClientTransport : public Transport {
public:
  TcpClientTransport(std::string Host, uint16_t Port,
                     const TcpClientConfig &Config = TcpClientConfig())
      : Host(std::move(Host)), Port(Port), Config(Config),
        Jitter(Config.JitterSeed ^ 0x4a49545445ULL) {}
  Expected<Bytes> roundTrip(BytesView Request) override;

  /// Attempts consumed by the most recent roundTrip (tests read this).
  int lastAttempts() const { return LastAttempts.load(); }

private:
  Expected<Bytes> attemptOnce(BytesView Request, int ConnectTimeoutMs,
                              int IoTimeoutMs);

  std::string Host;
  uint16_t Port;
  TcpClientConfig Config;
  std::mutex JitterMutex;
  Drbg Jitter; ///< Guarded by JitterMutex.
  std::atomic<int> LastAttempts{0};
};

} // namespace elide

#endif // SGXELIDE_SERVER_TRANSPORT_H
