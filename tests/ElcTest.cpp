//===- tests/ElcTest.cpp - Elc compiler end-to-end tests --------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles Elc snippets, loads the resulting ELF enclave image into flat
/// memory, executes exported functions on the SVM interpreter, and checks
/// results -- the full lexer->parser->codegen->linker->ELF->VM path.
///
//===----------------------------------------------------------------------===//

#include "elc/Compiler.h"
#include "elf/ElfImage.h"
#include "vm/Disassembler.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace elide;
using namespace elide::elc;

namespace {

constexpr size_t RamSize = 1 << 20;

struct LoadedProgram {
  FlatMemory Ram{RamSize};
  std::map<std::string, uint64_t> Bridges;
};

/// Compiles and loads a program; aborts the test on failure.
std::unique_ptr<LoadedProgram> compileAndLoad(const std::string &Source,
                                              const CallRegistry &Calls = {}) {
  Expected<CompileResult> Result =
      compileEnclave({{"test.elc", Source}}, Calls);
  if (!Result) {
    ADD_FAILURE() << "compile error: " << Result.errorMessage();
    return nullptr;
  }
  Expected<ElfImage> Image = ElfImage::parse(Result->ElfFile);
  if (!Image) {
    ADD_FAILURE() << "ELF parse error: " << Image.errorMessage();
    return nullptr;
  }
  auto Prog = std::make_unique<LoadedProgram>();
  for (const ElfSegment &Seg : Image->segments()) {
    if (Seg.Type != PT_LOAD || Seg.FileSize == 0)
      continue;
    BytesView Content(Image->fileBytes().data() + Seg.Offset, Seg.FileSize);
    EXPECT_FALSE(static_cast<bool>(Prog->Ram.write(Seg.VAddr, Content)));
  }
  for (const ElfSymbol &Sym : Image->symbols())
    if (Sym.Name.rfind(bridgePrefix(), 0) == 0)
      Prog->Bridges[Sym.Name.substr(strlen(bridgePrefix()))] = Sym.Value;
  return Prog;
}

/// Runs an exported function with up to 4 integer arguments.
ExecResult runExport(LoadedProgram &Prog, const std::string &Name,
                     std::vector<uint64_t> Args = {}, Vm *ExternalVm = nullptr) {
  auto It = Prog.Bridges.find(Name);
  if (It == Prog.Bridges.end()) {
    ADD_FAILURE() << "no export named " << Name;
    return {};
  }
  Vm Local(Prog.Ram);
  Vm &M = ExternalVm ? *ExternalVm : Local;
  M.setReg(SvmRegSp, RamSize - 64);
  for (size_t I = 0; I < Args.size(); ++I)
    M.setReg(static_cast<unsigned>(1 + I), Args[I]);
  return M.run(It->second);
}

/// One-shot helper: compile, run, expect a HALT with the given value.
void expectResult(const std::string &Source, const std::string &Name,
                  std::vector<uint64_t> Args, uint64_t ExpectedValue) {
  auto Prog = compileAndLoad(Source);
  ASSERT_NE(Prog, nullptr);
  ExecResult R = runExport(*Prog, Name, std::move(Args));
  ASSERT_TRUE(R.halted()) << trapKindName(R.Kind) << ": " << R.Message;
  EXPECT_EQ(R.ReturnValue, ExpectedValue);
}

//===----------------------------------------------------------------------===//
// Arithmetic and expressions
//===----------------------------------------------------------------------===//

TEST(ElcExprTest, ConstantReturn) {
  expectResult("export fn f() -> u64 { return 42; }", "f", {}, 42);
}

TEST(ElcExprTest, Arguments) {
  expectResult("export fn add3(a: u64, b: u64, c: u64) -> u64 {"
               "  return a + b + c; }",
               "add3", {10, 20, 12}, 42);
}

TEST(ElcExprTest, Precedence) {
  expectResult("export fn f() -> u64 { return 2 + 3 * 4 - 6 / 2; }", "f", {},
               11);
}

TEST(ElcExprTest, BitwiseOps) {
  expectResult("export fn f(a: u64, b: u64) -> u64 {"
               "  return (a & b) | (a ^ b) | (a << 2) | (b >> 1); }",
               "f", {0x0f, 0xf0}, (0x0fULL & 0xf0) | (0x0fULL ^ 0xf0) |
                                      (0x0fULL << 2) | (0xf0ULL >> 1));
}

TEST(ElcExprTest, ComparisonsUnsigned) {
  expectResult("export fn f(a: u64, b: u64) -> u64 {"
               "  var n: u64 = 0;"
               "  if (a < b) { n = n + 1; }"
               "  if (a <= b) { n = n + 2; }"
               "  if (a > b) { n = n + 4; }"
               "  if (a >= b) { n = n + 8; }"
               "  if (a == b) { n = n + 16; }"
               "  if (a != b) { n = n + 32; }"
               "  return n; }",
               "f", {5, 7}, 1 + 2 + 32);
}

TEST(ElcExprTest, SignedComparison) {
  // -1 as i64 is less than 1; as u64 it would be greater.
  expectResult("export fn f() -> u64 {"
               "  var a: i64 = 0 - 1;"
               "  var b: i64 = 1;"
               "  if (a < b) { return 1; }"
               "  return 0; }",
               "f", {}, 1);
}

TEST(ElcExprTest, SignedDivision) {
  expectResult("export fn f() -> i64 {"
               "  var a: i64 = 0 - 7;"
               "  var b: i64 = 2;"
               "  return a / b; }",
               "f", {}, static_cast<uint64_t>(int64_t{-3}));
}

TEST(ElcExprTest, UnsignedDivision) {
  expectResult("export fn f(a: u64, b: u64) -> u64 { return a / b + a % b; }",
               "f", {17, 5}, 3 + 2);
}

TEST(ElcExprTest, UnaryOperators) {
  expectResult("export fn f(a: u64) -> u64 { return ~a + (0 - a) + !a; }",
               "f", {0}, ~0ULL + 0 + 1);
}

TEST(ElcExprTest, ShortCircuitAnd) {
  // Division by zero on the rhs must not execute when lhs is false.
  expectResult("export fn f(a: u64, b: u64) -> u64 {"
               "  if (a != 0 && 10 / a > b) { return 1; }"
               "  return 0; }",
               "f", {0, 3}, 0);
}

TEST(ElcExprTest, ShortCircuitOr) {
  expectResult("export fn f(a: u64) -> u64 {"
               "  if (a == 0 || 10 / a == 2) { return 7; }"
               "  return 9; }",
               "f", {0}, 7);
}

TEST(ElcExprTest, CastTruncation) {
  expectResult("export fn f() -> u64 { return 0x1234567890 as u16; }", "f",
               {}, 0x7890);
  expectResult("export fn f() -> u64 { return 0xffffffff12345678 as u32; }",
               "f", {}, 0x12345678);
  expectResult("export fn f() -> u64 { return 300 as u8; }", "f", {}, 44);
  expectResult("export fn f() -> u64 { return 5 as bool; }", "f", {}, 1);
}

TEST(ElcExprTest, LargeConstants) {
  expectResult("export fn f() -> u64 { return 0xdeadbeefcafebabe; }", "f", {},
               0xdeadbeefcafebabeULL);
}

TEST(ElcExprTest, HexAndCharLiterals) {
  expectResult("export fn f() -> u64 { return 0xff + 'A'; }", "f", {},
               255 + 65);
}

//===----------------------------------------------------------------------===//
// Control flow
//===----------------------------------------------------------------------===//

TEST(ElcControlTest, WhileLoopSum) {
  expectResult("export fn f(n: u64) -> u64 {"
               "  var sum: u64 = 0;"
               "  var i: u64 = 1;"
               "  while (i <= n) { sum = sum + i; i = i + 1; }"
               "  return sum; }",
               "f", {100}, 5050);
}

TEST(ElcControlTest, ForLoop) {
  expectResult("export fn f() -> u64 {"
               "  var sum: u64 = 0;"
               "  for (var i: u64 = 0; i < 10; i = i + 1) { sum += i; }"
               "  return sum; }",
               "f", {}, 45);
}

TEST(ElcControlTest, BreakContinue) {
  expectResult("export fn f() -> u64 {"
               "  var sum: u64 = 0;"
               "  for (var i: u64 = 0; i < 100; i = i + 1) {"
               "    if (i % 2 == 0) { continue; }"
               "    if (i > 10) { break; }"
               "    sum += i;"
               "  }"
               "  return sum; }",
               "f", {}, 1 + 3 + 5 + 7 + 9);
}

TEST(ElcControlTest, NestedLoops) {
  expectResult("export fn f() -> u64 {"
               "  var total: u64 = 0;"
               "  for (var i: u64 = 0; i < 5; i = i + 1) {"
               "    for (var j: u64 = 0; j < 5; j = j + 1) {"
               "      if (j == 3) { break; }"
               "      total += i * j;"
               "    }"
               "  }"
               "  return total; }",
               "f", {}, (0 + 1 + 2 + 3 + 4) * (0 + 1 + 2));
}

TEST(ElcControlTest, ElseIfChain) {
  const char *Src = "export fn grade(x: u64) -> u64 {"
                    "  if (x >= 90) { return 4; }"
                    "  else if (x >= 80) { return 3; }"
                    "  else if (x >= 70) { return 2; }"
                    "  else { return 0; } }";
  expectResult(Src, "grade", {95}, 4);
  expectResult(Src, "grade", {85}, 3);
  expectResult(Src, "grade", {70}, 2);
  expectResult(Src, "grade", {10}, 0);
}

//===----------------------------------------------------------------------===//
// Functions and recursion
//===----------------------------------------------------------------------===//

TEST(ElcFunctionTest, CallChain) {
  expectResult("fn double(x: u64) -> u64 { return x * 2; }"
               "fn inc(x: u64) -> u64 { return x + 1; }"
               "export fn f(x: u64) -> u64 { return double(inc(x)); }",
               "f", {20}, 42);
}

TEST(ElcFunctionTest, Recursion) {
  expectResult("fn fib(n: u64) -> u64 {"
               "  if (n < 2) { return n; }"
               "  return fib(n - 1) + fib(n - 2); }"
               "export fn f(n: u64) -> u64 { return fib(n); }",
               "f", {20}, 6765);
}

TEST(ElcFunctionTest, TempsSurviveCalls) {
  // The multiply's lhs must survive the call on the rhs.
  expectResult("fn g(x: u64) -> u64 { return x + 1; }"
               "export fn f(a: u64) -> u64 { return a * g(a); }",
               "f", {6}, 42);
}

TEST(ElcFunctionTest, VoidFunction) {
  expectResult("var counter: u64 = 0;"
               "fn bump() { counter = counter + 3; }"
               "export fn f() -> u64 { bump(); bump(); return counter; }",
               "f", {}, 6);
}

TEST(ElcFunctionTest, MutualRecursion) {
  expectResult("fn isEven(n: u64) -> bool {"
               "  if (n == 0) { return true; } return isOdd(n - 1); }"
               "fn isOdd(n: u64) -> bool {"
               "  if (n == 0) { return false; } return isEven(n - 1); }"
               "export fn f(n: u64) -> u64 {"
               "  if (isEven(n)) { return 1; } return 0; }",
               "f", {10}, 1);
}

//===----------------------------------------------------------------------===//
// Memory: locals, arrays, pointers, globals
//===----------------------------------------------------------------------===//

TEST(ElcMemoryTest, LocalArray) {
  expectResult("export fn f() -> u64 {"
               "  var a: u64[8];"
               "  for (var i: u64 = 0; i < 8; i = i + 1) { a[i] = i * i; }"
               "  var sum: u64 = 0;"
               "  for (var i: u64 = 0; i < 8; i = i + 1) { sum += a[i]; }"
               "  return sum; }",
               "f", {}, 0 + 1 + 4 + 9 + 16 + 25 + 36 + 49);
}

TEST(ElcMemoryTest, ArrayInitializer) {
  expectResult("export fn f() -> u64 {"
               "  var a: u32[4] = [10, 20, 30, 40];"
               "  return a[0] + a[3]; }",
               "f", {}, 50);
}

TEST(ElcMemoryTest, ByteArrayNarrowing) {
  expectResult("export fn f() -> u64 {"
               "  var a: u8[4];"
               "  a[0] = 0x1ff;" // truncates to 0xff
               "  return a[0]; }",
               "f", {}, 0xff);
}

TEST(ElcMemoryTest, PointerDerefAndWrite) {
  expectResult("export fn f() -> u64 {"
               "  var x: u64 = 5;"
               "  var p: *u64 = &x;"
               "  *p = 42;"
               "  return x; }",
               "f", {}, 42);
}

TEST(ElcMemoryTest, PointerArithmetic) {
  expectResult("export fn f() -> u64 {"
               "  var a: u32[4] = [1, 2, 3, 4];"
               "  var p: *u32 = &a[0];"
               "  p = p + 2;"
               "  return *p; }",
               "f", {}, 3);
}

TEST(ElcMemoryTest, PointerDifference) {
  expectResult("export fn f() -> u64 {"
               "  var a: u32[8];"
               "  var p: *u32 = &a[6];"
               "  var q: *u32 = &a[2];"
               "  return p - q; }",
               "f", {}, 4);
}

TEST(ElcMemoryTest, GlobalScalar) {
  expectResult("var g: u64 = 40;"
               "export fn f() -> u64 { g = g + 2; return g; }",
               "f", {}, 42);
}

TEST(ElcMemoryTest, GlobalArrayInitialized) {
  expectResult("var table: u32[5] = [2, 4, 6, 8, 10];"
               "export fn f(i: u64) -> u64 { return table[i]; }",
               "f", {3}, 8);
}

TEST(ElcMemoryTest, GlobalBssZeroed) {
  expectResult("var buf: u64[16];"
               "export fn f() -> u64 {"
               "  var sum: u64 = 0;"
               "  for (var i: u64 = 0; i < 16; i = i + 1) { sum += buf[i]; }"
               "  return sum; }",
               "f", {}, 0);
}

TEST(ElcMemoryTest, GlobalString) {
  expectResult("var msg: u8[16] = \"hi!\";"
               "export fn f() -> u64 { return msg[0] + msg[1] + msg[2] + "
               "msg[3]; }",
               "f", {}, 'h' + 'i' + '!' + 0);
}

TEST(ElcMemoryTest, LocalStringInit) {
  expectResult("export fn f() -> u64 {"
               "  var s: u8[8] = \"AB\";"
               "  return s[0] * 256 + s[1]; }",
               "f", {}, 'A' * 256 + 'B');
}

TEST(ElcMemoryTest, StringLiteralExpr) {
  expectResult("export fn f() -> u64 {"
               "  var p: *u8 = \"xyz\";"
               "  return p[2]; }",
               "f", {}, 'z');
}

TEST(ElcMemoryTest, PassPointerToFunction) {
  expectResult("fn fill(p: *u64, n: u64) {"
               "  for (var i: u64 = 0; i < n; i = i + 1) { p[i] = i + 1; } }"
               "export fn f() -> u64 {"
               "  var a: u64[4];"
               "  fill(&a[0], 4);"
               "  return a[0] + a[1] + a[2] + a[3]; }",
               "f", {}, 10);
}

TEST(ElcMemoryTest, ArrayDecaysWhenPassed) {
  expectResult("fn sum(p: *u32, n: u64) -> u64 {"
               "  var s: u64 = 0;"
               "  for (var i: u64 = 0; i < n; i = i + 1) { s += p[i]; }"
               "  return s; }"
               "var data: u32[3] = [7, 8, 9];"
               "export fn f() -> u64 { return sum(data, 3); }",
               "f", {}, 24);
}

TEST(ElcMemoryTest, CompoundAssignOnArray) {
  expectResult("export fn f() -> u64 {"
               "  var a: u64[2] = [10, 20];"
               "  a[1] += 12;"
               "  a[0] -= 3;"
               "  return a[0] * 100 + a[1]; }",
               "f", {}, 732);
}

TEST(ElcMemoryTest, U16LoadStore) {
  expectResult("export fn f() -> u64 {"
               "  var a: u16[2];"
               "  a[0] = 0xbeef;"
               "  a[1] = 0x1234;"
               "  return (a[1] as u64 << 16) | a[0]; }",
               "f", {}, 0x1234beef);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

void expectCompileError(const std::string &Source,
                        const std::string &Fragment) {
  Expected<CompileResult> Result = compileEnclave({{"t.elc", Source}}, {});
  ASSERT_FALSE(static_cast<bool>(Result)) << "expected a compile error";
  EXPECT_NE(Result.errorMessage().find(Fragment), std::string::npos)
      << "got: " << Result.errorMessage();
}

TEST(ElcDiagnosticsTest, UndeclaredIdentifier) {
  expectCompileError("export fn f() -> u64 { return nope; }", "undeclared");
}

TEST(ElcDiagnosticsTest, UndeclaredFunction) {
  expectCompileError("export fn f() -> u64 { return g(); }", "undeclared");
}

TEST(ElcDiagnosticsTest, ArgumentCountMismatch) {
  expectCompileError("fn g(a: u64) -> u64 { return a; }"
                     "export fn f() -> u64 { return g(1, 2); }",
                     "expects 1 arguments");
}

TEST(ElcDiagnosticsTest, VoidValueUse) {
  expectCompileError("fn g() { }"
                     "export fn f() -> u64 { return g(); }",
                     "void");
}

TEST(ElcDiagnosticsTest, ReturnFromVoid) {
  expectCompileError("export fn f() { return 3; }", "void function");
}

TEST(ElcDiagnosticsTest, BreakOutsideLoop) {
  expectCompileError("export fn f() { break; }", "outside of a loop");
}

TEST(ElcDiagnosticsTest, DuplicateFunction) {
  expectCompileError("fn g() {} fn g() {} export fn f() {}", "duplicate");
}

TEST(ElcDiagnosticsTest, DuplicateLocal) {
  expectCompileError("export fn f() { var x: u64; var x: u64; }",
                     "redefinition");
}

TEST(ElcDiagnosticsTest, PointerTypeMismatch) {
  expectCompileError("export fn f() {"
                     "  var a: u64 = 1;"
                     "  var p: *u64 = &a;"
                     "  var q: *u32 = p;"
                     "}",
                     "cannot initialize");
}

TEST(ElcDiagnosticsTest, SyntaxError) {
  expectCompileError("export fn f( { }", "expected parameter name");
}

TEST(ElcDiagnosticsTest, UnterminatedString) {
  expectCompileError("var s: u8[4] = \"abc;", "unterminated string");
}

TEST(ElcDiagnosticsTest, UnknownExternTcall) {
  expectCompileError("extern tcall fn mystery();"
                     "export fn f() { mystery(); }",
                     "not provided");
}

//===----------------------------------------------------------------------===//
// Runtime traps
//===----------------------------------------------------------------------===//

TEST(ElcTrapTest, DivideByZeroTraps) {
  auto Prog = compileAndLoad(
      "export fn f(a: u64, b: u64) -> u64 { return a / b; }");
  ASSERT_NE(Prog, nullptr);
  ExecResult R = runExport(*Prog, "f", {1, 0});
  EXPECT_EQ(R.Kind, TrapKind::DivideByZero);
}

TEST(ElcTrapTest, MissingReturnTraps) {
  auto Prog = compileAndLoad("export fn f(a: u64) -> u64 {"
                             "  if (a == 1) { return 5; } }");
  ASSERT_NE(Prog, nullptr);
  ExecResult R = runExport(*Prog, "f", {2});
  EXPECT_EQ(R.Kind, TrapKind::ExplicitTrap);
}

TEST(ElcTrapTest, OutOfBoundsPointerTraps) {
  auto Prog = compileAndLoad("export fn f() -> u64 {"
                             "  var p: *u64 = 0x7fffffff as u64 as *u64;"
                             "  return *p; }");
  // Casting int to pointer requires two hops in Elc; accept either a
  // compile error or a runtime memory fault.
  if (!Prog)
    return;
  ExecResult R = runExport(*Prog, "f");
  EXPECT_EQ(R.Kind, TrapKind::MemoryFault);
}

//===----------------------------------------------------------------------===//
// Ocall / tcall integration
//===----------------------------------------------------------------------===//

TEST(ElcExternTest, TcallRoundTrip) {
  CallRegistry Calls;
  Calls.Tcalls["host_add"] = 7;
  Expected<CompileResult> Result = compileEnclave(
      {{"t.elc", "extern tcall fn host_add(a: u64, b: u64) -> u64;"
                 "export fn f(x: u64) -> u64 { return host_add(x, 5); }"}},
      Calls);
  ASSERT_TRUE(static_cast<bool>(Result)) << Result.errorMessage();

  Expected<ElfImage> Image = ElfImage::parse(Result->ElfFile);
  ASSERT_TRUE(static_cast<bool>(Image));
  FlatMemory Ram(RamSize);
  for (const ElfSegment &Seg : Image->segments()) {
    if (Seg.Type == PT_LOAD && Seg.FileSize > 0) {
      ASSERT_FALSE(static_cast<bool>(Ram.write(
          Seg.VAddr,
          BytesView(Image->fileBytes().data() + Seg.Offset, Seg.FileSize))));
    }
  }

  const ElfSymbol *Bridge = Image->symbolByName("__bridge_f");
  ASSERT_NE(Bridge, nullptr);

  Vm M(Ram);
  M.setTcallHandler([](uint32_t Index, Vm &V) -> Expected<uint64_t> {
    EXPECT_EQ(Index, 7u);
    return V.reg(1) + V.reg(2);
  });
  M.setReg(SvmRegSp, RamSize - 64);
  M.setReg(1, 37);
  ExecResult R = M.run(Bridge->Value);
  ASSERT_TRUE(R.halted()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 42u);
}

//===----------------------------------------------------------------------===//
// ELF structure of compiled enclaves
//===----------------------------------------------------------------------===//

TEST(ElcElfTest, SectionsAndSymbols) {
  Expected<CompileResult> Result = compileEnclave(
      {{"t.elc", "var g: u64 = 7; var z: u64[4];"
                 "fn helper(x: u64) -> u64 { return x + g; }"
                 "export fn entry(x: u64) -> u64 { return helper(x); }"}},
      {});
  ASSERT_TRUE(static_cast<bool>(Result)) << Result.errorMessage();
  Expected<ElfImage> Image = ElfImage::parse(Result->ElfFile);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();

  EXPECT_NE(Image->sectionByName(".text"), nullptr);
  EXPECT_NE(Image->sectionByName(".data"), nullptr);
  EXPECT_NE(Image->sectionByName(".bss"), nullptr);
  EXPECT_NE(Image->sectionByName(ecallSectionName()), nullptr);

  const ElfSymbol *Helper = Image->symbolByName("helper");
  ASSERT_NE(Helper, nullptr);
  EXPECT_TRUE(Helper->isFunction());
  EXPECT_GT(Helper->Size, 0u);

  const ElfSymbol *Entry = Image->symbolByName("entry");
  ASSERT_NE(Entry, nullptr);
  const ElfSymbol *Bridge = Image->symbolByName("__bridge_entry");
  ASSERT_NE(Bridge, nullptr);

  const ElfSymbol *G = Image->symbolByName("g");
  ASSERT_NE(G, nullptr);
  EXPECT_TRUE(G->isObject());

  // Ecall manifest contains the export.
  const ElfSection *Ecalls = Image->sectionByName(ecallSectionName());
  Bytes Manifest = Image->sectionContents(*Ecalls);
  EXPECT_EQ(stringOfBytes(Manifest), "entry\n");

  // Text segment is R+X and not writable before sanitization.
  bool FoundText = false;
  for (const ElfSegment &Seg : Image->segments()) {
    if (Seg.Type == PT_LOAD && (Seg.Flags & PF_X)) {
      FoundText = true;
      EXPECT_EQ(Seg.Flags & PF_W, 0u);
    }
  }
  EXPECT_TRUE(FoundText);
}

TEST(ElcElfTest, DisassemblyShowsCode) {
  Expected<CompileResult> Result = compileEnclave(
      {{"t.elc", "export fn f(a: u64) -> u64 { return a * 3; }"}}, {});
  ASSERT_TRUE(static_cast<bool>(Result)) << Result.errorMessage();
  Expected<ElfImage> Image = ElfImage::parse(Result->ElfFile);
  ASSERT_TRUE(static_cast<bool>(Image));
  const ElfSection *Text = Image->sectionByName(".text");
  ASSERT_NE(Text, nullptr);
  Bytes Code = Image->sectionContents(*Text);
  std::string Asm = disassemble(Code, Text->Addr);
  EXPECT_NE(Asm.find("halt"), std::string::npos);
  EXPECT_NE(Asm.find("ret"), std::string::npos);
  EXPECT_GT(countValidInstructionSlots(Code), 5u);
}

} // namespace
