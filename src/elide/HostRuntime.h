//===- elide/HostRuntime.h - Untrusted host side of SgxElide --------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The untrusted component SgxElide adds to an application (the paper's
/// "+50 LOC" on the UC side): implementations of the framework ocalls
/// (`elide_server_request`, `elide_read_file`, sealing persistence, quote
/// shuttling, debug printing) and the one-line `restore()` call a
/// developer makes after creating the enclave.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_ELIDE_HOSTRUNTIME_H
#define SGXELIDE_ELIDE_HOSTRUNTIME_H

#include "elide/Bridge.h"
#include "elide/Provisioner.h"
#include "server/Transport.h"
#include "sgx/Attestation.h"
#include "sgx/Enclave.h"
#include "support/AtomicFile.h"

#include <atomic>
#include <functional>
#include <string>

namespace elide {

/// Application hook for ocalls at indices >= OcallAppBase.
using AppOcallHandler =
    std::function<Expected<Bytes>(uint32_t Index, BytesView Request)>;

// `RestoreStatus` itself lives in support/Error.h alongside the one
// shared retryable-vs-terminal table (`retryabilityOf`), so the restorer's
// and the transport's failure vocabularies classify in one place.

/// Human-readable name for a restore status (diagnostics).
const char *restoreStatusName(uint64_t Status);

/// Retry behavior for `ElideHost::restore`. Because a failed restore
/// never half-writes the text section, retrying is always *safe*; the
/// policy bounds how long the host keeps trying, and the loop stops
/// early on terminal statuses (the shared table in support/Error.h).
struct RestorePolicy {
  /// Total restore attempts (1 = no retry).
  int MaxAttempts = 1;
  /// Pause between attempts, doubled each retry.
  int RetryDelayMs = 10;
};

/// The untrusted SgxElide runtime for one enclave.
class ElideHost {
public:
  /// \param Server   connection to the authentication server (may be null:
  ///                 server requests then fail, exercising the paper's
  ///                 denial-of-service observation).
  /// \param Qe       the platform quoting enclave.
  ElideHost(Transport *Server, sgx::QuotingEnclave *Qe)
      : Server(Server), Qe(Qe) {}

  /// Supplies the shipped enclave.secret.data file contents (local-data
  /// mode).
  void setSecretDataFile(Bytes Contents) {
    SecretDataFile = std::move(Contents);
  }

  /// Uses \p Path to persist the sealed-secrets blob across launches;
  /// when unset, the blob is kept in memory (single-process lifetime).
  /// On-disk blobs are wrapped in a CRC-protected versioned container and
  /// written crash-consistently (temp file + fsync + atomic rename); a
  /// torn or corrupt blob found on read is quarantined to
  /// `Path + ".quarantine"` and the restore chain falls through to the
  /// remaining secret sources.
  void setSealedPath(std::string Path) { SealedPath = std::move(Path); }

  /// The sealed-cache path (empty when the blob is memory-only). The
  /// supervisor reads this to point its chaos injector at the right file.
  const std::string &sealedPath() const { return SealedPath; }

  /// Observation hook for cache persistence events (CacheWritten,
  /// CacheWriteFailed, CacheQuarantined). Shares the ProvisionEvent
  /// vocabulary with `Provisioner`, so one callback can watch the whole
  /// chain.
  void setEventCallback(ProvisionEventCallback Callback) {
    EventCallback = std::move(Callback);
  }

  /// Second, independent observer slot: the supervisor taps cache events
  /// (to classify CacheQuarantined as a contained fault) without stealing
  /// the application's callback. Both observers see every event.
  void setEventTap(ProvisionEventCallback Tap) { EventTap = std::move(Tap); }

  /// Test hook: injects a simulated crash into the next sealed-cache
  /// write (see AtomicCrashPoint). The chaos suite uses this to prove a
  /// crash between temp-file write and rename never corrupts the cache.
  void setSealedCrashPoint(AtomicCrashPoint Point) {
    SealedCrashPoint = Point;
  }

  /// Collects t_debug_print output (tests and game frontends read this).
  std::string &debugOutput() { return DebugOutput; }

  /// Registers the application's own ocalls (indices >= OcallAppBase).
  void setAppOcallHandler(AppOcallHandler Handler) {
    AppHandler = std::move(Handler);
  }

  /// Stamps every outgoing server request with \p Class (and, when
  /// \p DeadlineMs > 0, an end-to-end deadline) by wrapping it in a
  /// request envelope (server/Protocol.h). Default class with no
  /// deadline sends bare frames, byte-identical to pre-envelope hosts.
  /// The supervisor marks recovery-time restores Sheddable through this
  /// hook so a rebuild storm never starves live traffic. Thread-safe.
  void setRequestClass(Criticality Class, uint32_t DeadlineMs = 0) {
    ReqClass.store(static_cast<uint8_t>(Class), std::memory_order_relaxed);
    ReqDeadlineMs.store(DeadlineMs, std::memory_order_relaxed);
  }

  /// The current outgoing-request criticality class.
  Criticality requestClass() const {
    return static_cast<Criticality>(ReqClass.load(std::memory_order_relaxed));
  }

  /// The current outgoing-request deadline (0 = none).
  uint32_t requestDeadlineMs() const {
    return ReqDeadlineMs.load(std::memory_order_relaxed);
  }

  /// Installs the trusted library and this host's ocall dispatcher into
  /// \p E. Call once after loading the enclave.
  void attach(sgx::Enclave &E);

  /// The paper's single developer-facing call: invokes the elide_restore
  /// ecall. Returns the restorer's status (0 = success; see
  /// RestoreStatus).
  Expected<uint64_t> restore(sgx::Enclave &E);

  /// Like restore(), but keeps attempting under \p Policy while the
  /// restorer reports a nonzero status. Returns the final status (0 when
  /// some attempt succeeded). Ecall traps abort immediately -- a trapped
  /// restorer is a broken build, not a network hiccup.
  Expected<uint64_t> restore(sgx::Enclave &E, const RestorePolicy &Policy);

private:
  Expected<Bytes> handleOcall(uint32_t Index, BytesView Request);
  Expected<Bytes> readSealed();
  Expected<Bytes> writeSealed(BytesView Request);
  void emit(const ProvisionEvent &Event);

  Transport *Server;
  sgx::QuotingEnclave *Qe;
  Bytes SecretDataFile;
  Bytes SealedBlob;
  std::string SealedPath;
  std::string DebugOutput;
  AppOcallHandler AppHandler;
  ProvisionEventCallback EventCallback;
  ProvisionEventCallback EventTap;
  AtomicCrashPoint SealedCrashPoint = AtomicCrashPoint::None;
  std::atomic<uint8_t> ReqClass{static_cast<uint8_t>(Criticality::Default)};
  std::atomic<uint32_t> ReqDeadlineMs{0};
};

} // namespace elide

#endif // SGXELIDE_ELIDE_HOSTRUNTIME_H
