//===- server/Transport.h - Client/server transports -----------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request/response transports between the untrusted host runtime and the
/// authentication server. `LoopbackTransport` calls the server in-process
/// (used by tests and benchmarks -- the paper likewise ran client and
/// server on one machine over sockets with "very little network latency");
/// `TcpServer`/`TcpClientTransport` run the same byte protocol over real
/// TCP sockets with length-prefixed frames.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_SERVER_TRANSPORT_H
#define SGXELIDE_SERVER_TRANSPORT_H

#include "server/AuthServer.h"

#include <atomic>
#include <memory>
#include <thread>

namespace elide {

/// Synchronous request/response channel to the authentication server.
class Transport {
public:
  virtual ~Transport();

  /// Sends one request frame and waits for the response frame.
  virtual Expected<Bytes> roundTrip(BytesView Request) = 0;
};

/// Calls an in-process server directly.
class LoopbackTransport : public Transport {
public:
  explicit LoopbackTransport(AuthServer &Server) : Server(Server) {}
  Expected<Bytes> roundTrip(BytesView Request) override;

private:
  AuthServer &Server;
};

/// Serves an AuthServer over TCP (one connection at a time; frames are
/// u32-length-prefixed). Binds to 127.0.0.1 on an ephemeral port.
class TcpServer {
public:
  /// Starts the accept loop on a background thread.
  static Expected<std::unique_ptr<TcpServer>> start(AuthServer &Server);
  ~TcpServer();

  /// The bound port.
  uint16_t port() const { return Port; }

  /// Stops the accept loop and joins the thread.
  void stop();

private:
  TcpServer() = default;
  void serveLoop();

  AuthServer *Server = nullptr;
  int ListenFd = -1;
  uint16_t Port = 0;
  std::thread Worker;
  std::atomic<bool> Stopping{false};
};

/// TCP client side: connects per roundTrip (the restorer makes only a
/// handful of requests, so connection reuse is not worth statefulness --
/// but the session key survives across connections since the server keys
/// the session, not the socket).
class TcpClientTransport : public Transport {
public:
  TcpClientTransport(std::string Host, uint16_t Port)
      : Host(std::move(Host)), Port(Port) {}
  Expected<Bytes> roundTrip(BytesView Request) override;

private:
  std::string Host;
  uint16_t Port;
};

} // namespace elide

#endif // SGXELIDE_SERVER_TRANSPORT_H
