//===- apps/AppUtil.h - Shared helpers for the benchmark apps -------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the seven app ports: Elc global-array synthesis (the
/// lookup tables are defined once in C++ and emitted into the trusted
/// sources, so the Elc and oracle implementations cannot drift), and the
/// standard ecall wrapper used by workload drivers.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_APPS_APPUTIL_H
#define SGXELIDE_APPS_APPUTIL_H

#include "sgx/Enclave.h"
#include "support/Bytes.h"

#include <string>

namespace elide {
namespace apps {

/// Emits `var <Name>: u8[<N>] = [ ... ];`.
std::string elcArrayU8(const std::string &Name, BytesView Values);

/// Emits `var <Name>: u32[<N>] = [ ... ];`.
std::string elcArrayU32(const std::string &Name, const uint32_t *Values,
                        size_t Count);

/// Emits `var <Name>: u64[<N>] = [ ... ];`.
std::string elcArrayU64(const std::string &Name, const uint64_t *Values,
                        size_t Count);

/// Invokes \p Ecall with \p Input, expecting a clean HALT; returns the
/// first \p OutLen bytes of output. Fails on traps or a nonzero status
/// unless \p ExpectStatus says otherwise.
Expected<Bytes> runEcall(sgx::Enclave &E, const std::string &Ecall,
                         BytesView Input, size_t OutLen,
                         uint64_t ExpectStatus = 0);

} // namespace apps
} // namespace elide

#endif // SGXELIDE_APPS_APPUTIL_H
