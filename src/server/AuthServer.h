//===- server/AuthServer.h - The authentication server --------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The developer-controlled trusted remote party of the paper: it holds
/// `enclave.secret.meta` (always) and `enclave.secret.data` (remote-data
/// mode), verifies that a connecting client is the developer's sanitized
/// enclave running on genuine hardware (quote verification + measurement
/// check), establishes the AES-GCM channel, and answers REQUEST_META /
/// REQUEST_DATA.
///
/// "In our framework, the server stands alone and requires no developer
/// input" -- constructing an AuthServer takes only the sanitizer's
/// artifacts and the expected measurement.
///
/// Built for fleet scale: session state lives in a mutex-striped
/// `SessionStore` (no global session lock), usage counters are atomics,
/// and the only remaining lock is a tiny RNG stripe held just long
/// enough to draw key/IV bytes. A HELLO-BATCH frame amortizes one quote
/// verification over a whole batch of enclaves sharing a measurement.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_SERVER_AUTHSERVER_H
#define SGXELIDE_SERVER_AUTHSERVER_H

#include "elide/SecretMeta.h"
#include "server/Protocol.h"
#include "server/Reactor.h"
#include "server/SessionStore.h"
#include "sgx/SgxTypes.h"

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>

namespace elide {

/// Brownout levels, in escalation order. The controller walks up when the
/// queue-delay EWMA crosses a threshold and back down (with hysteresis)
/// when it falls below half that threshold:
///
///            EWMA > DegradedMs          EWMA > ShedMs
///   Normal  ------------------> Degraded -----------> Shed
///   Normal  <------------------ Degraded <----------- Shed
///            EWMA < DegradedMs/2        EWMA < ShedMs/2
///
/// Degraded sheds Sheddable traffic and quadruples retry-after hints;
/// Shed also sheds Default traffic, suppresses HELLO-BATCH amortization
/// (one batch frame pins a worker for the whole key list -- exactly the
/// head-of-line blocking a drowning server cannot afford), and multiplies
/// retry-after hints by 16.
enum class BrownoutMode { Normal, Degraded, Shed };

/// Human-readable brownout mode name (stats, logs, bench JSON).
const char *brownoutModeName(BrownoutMode Mode);

/// Server configuration: trust anchors plus the secret artifacts.
struct AuthServerConfig {
  /// Attestation authority public key (the IAS trust anchor).
  Ed25519PublicKey AuthorityKey{};
  /// The measurement the quote must attest to -- the *sanitized* enclave.
  sgx::Measurement ExpectedMrEnclave{};
  /// Optionally also pin the vendor (MRSIGNER).
  std::optional<sgx::Measurement> ExpectedMrSigner;
  /// enclave.secret.meta content.
  SecretMeta Meta;
  /// enclave.secret.data content (plaintext). Required in remote-data
  /// mode; leave empty in local-data mode (the client has the ciphertext).
  Bytes SecretData;
  /// Server randomness seed (IVs, ephemeral keys).
  uint64_t RngSeed = 1;
  /// Upper bound on live sessions; when a session-store stripe fills, its
  /// oldest session is evicted (that client simply re-attests).
  size_t MaxSessions = 1024;
  /// Mutex stripes in the session store (rounded up to a power of two).
  /// More stripes buy less lock contention between concurrent RECORD
  /// exchanges at the cost of coarser per-stripe eviction.
  size_t SessionShards = 16;
  /// Per-session request budget: RECORD exchanges beyond this many on one
  /// session are refused and the session is dropped (the client
  /// re-attests, which re-proves it still runs the sanitized enclave).
  /// 0 = unlimited.
  size_t MaxRequestsPerSession = 0;
  /// Load shedding: when more than this many `handle` calls are in
  /// flight concurrently, the excess are answered with an OVERLOADED
  /// frame instead of queueing behind quote verification. 0 = disabled.
  size_t OverloadThreshold = 0;
  /// Retry-after hint carried by shed responses (scaled up by the
  /// brownout controller: 4x in Degraded, 16x in Shed).
  uint32_t OverloadRetryAfterMs = 100;
  /// Brownout controller: queue-delay EWMA (reported by the transport via
  /// FrameContext) above this many milliseconds enters Degraded. 0
  /// disables the controller entirely (mode pinned to Normal).
  double BrownoutDegradedMs = 0.0;
  /// Queue-delay EWMA above this enters Shed. 0 disables the Shed level.
  double BrownoutShedMs = 0.0;
  /// Smoothing factor for the queue-delay and service-time EWMAs.
  double EwmaAlpha = 0.2;
};

/// Usage counters (benchmarks read these). `HandshakesCompleted` counts
/// attestation rounds (one per HELLO *or* HELLO-BATCH); the batch fields
/// expose the amortization the batching buys.
struct AuthServerStats {
  size_t HandshakesCompleted = 0;
  size_t HandshakesRejected = 0;
  size_t MetaRequests = 0;
  size_t DataRequests = 0;
  size_t SessionsEvicted = 0;
  size_t LiveSessions = 0;
  size_t RequestsShed = 0;
  size_t SessionBudgetsExhausted = 0;
  /// RECORD frames naming a session the server no longer knows (evicted,
  /// restarted, or recycled); answered with a typed re-attest ERROR.
  size_t StaleSessionRequests = 0;
  /// Successful HELLO-BATCH rounds (each also counts one handshake).
  size_t BatchHandshakes = 0;
  /// Sessions minted by HELLO-BATCH rounds.
  size_t BatchSessionsMinted = 0;
  /// Requests expired by admission control: their remaining deadline
  /// could not cover the measured service time, so the server refused
  /// them *before* spending crypto on an answer nobody would wait for.
  size_t DeadlineExpired = 0;
  /// OVERLOADED answers by criticality class of the shed request.
  size_t ShedCritical = 0;
  size_t ShedDefault = 0;
  size_t ShedSheddable = 0;
  /// HELLO-BATCH frames refused because the brownout mode was Shed.
  size_t BatchSuppressed = 0;
  /// Envelope frames rejected by strict parsing.
  size_t EnvelopeRejected = 0;
  /// Brownout mode changes since start (tests assert hysteresis with it).
  size_t BrownoutTransitions = 0;
  /// Current brownout mode.
  BrownoutMode Brownout = BrownoutMode::Normal;
  /// Current queue-delay EWMA in milliseconds.
  double QueueDelayEwmaMs = 0.0;
};

/// A multi-session authentication server. Transport-agnostic: feed it
/// request frames, send back its response frames (LoopbackTransport does
/// this in-process; the reactor-backed TcpServer over sockets). `handle`
/// is thread-safe and mostly lock-free: concurrent quote verifications,
/// GCM passes, and session lookups in different stripes all proceed in
/// parallel.
class AuthServer {
public:
  explicit AuthServer(AuthServerConfig Config);

  /// Handles one request frame and produces one response frame. Protocol
  /// violations produce ERROR frames rather than C++ errors so the
  /// transport can always answer the client. Safe to call concurrently.
  /// The context form carries the transport's queue-delay measurement
  /// into admission control and the brownout controller; the plain form
  /// (in-process transports, old call sites) reports zero queue delay.
  Bytes handle(BytesView Request, const FrameContext &Ctx);
  Bytes handle(BytesView Request) { return handle(Request, FrameContext()); }

  /// Current brownout mode (tests and benches read this).
  BrownoutMode brownoutMode() const;

  /// Snapshot of the usage counters.
  AuthServerStats stats() const;

  /// The session store (tests probe striping and eviction directly).
  const SessionStore &sessions() const { return Store; }

private:
  /// Service-time EWMA buckets, one per inner frame kind (handshake cost
  /// and record cost differ by orders of magnitude; one blended average
  /// would make admission control wrong for both).
  enum ServiceKind { SkHello = 0, SkHelloBatch = 1, SkRecord = 2, SkCount = 3 };

  Bytes handleHello(BytesView Frame);
  Bytes handleHelloBatch(BytesView Frame);
  Bytes handleRecord(BytesView Frame);

  /// Folds one queue-delay sample into the EWMA and walks the brownout
  /// state machine. Returns the mode this request is served under.
  BrownoutMode updateBrownout(double QueueDelayMs);
  /// Records a measured service time for \p Kind.
  void recordServiceTime(ServiceKind Kind, double Ms);
  /// The admission bar for \p Kind: the measured service-time EWMA, or 0
  /// when no sample exists yet (never refuse on a guess).
  double serviceEstimate(ServiceKind Kind) const;
  /// Counts one shed response against \p Class.
  void countShed(Criticality Class);

  /// Verifies a serialized quote against the trust anchors. Returns the
  /// report body or a rejection message (already counted).
  Expected<sgx::ReportBody> verifyAttestation(BytesView Quote);

  /// Draws a server ephemeral key pair and derives the session keys for
  /// \p ClientPub. Only the key-byte draw holds the RNG lock.
  SessionKeys makeSessionKeys(const X25519Key &ClientPub,
                              X25519Key &ServerPubOut);

  AuthServerConfig Config;
  std::atomic<size_t> InFlight{0}; ///< Concurrent handle() calls.
  mutable std::mutex RngMutex;
  Drbg Rng; ///< Guarded by RngMutex (key and IV draws only).
  SessionStore Store;

  std::atomic<size_t> HandshakesCompleted{0};
  std::atomic<size_t> HandshakesRejected{0};
  std::atomic<size_t> MetaRequests{0};
  std::atomic<size_t> DataRequests{0};
  std::atomic<size_t> RequestsShed{0};
  std::atomic<size_t> SessionBudgetsExhausted{0};
  std::atomic<size_t> StaleSessionRequests{0};
  std::atomic<size_t> BatchHandshakes{0};
  std::atomic<size_t> BatchSessionsMinted{0};
  std::atomic<size_t> DeadlineExpired{0};
  std::atomic<size_t> ShedCritical{0};
  std::atomic<size_t> ShedDefault{0};
  std::atomic<size_t> ShedSheddable{0};
  std::atomic<size_t> BatchSuppressed{0};
  std::atomic<size_t> EnvelopeRejected{0};

  /// Brownout controller and admission-control state. One small mutex for
  /// a handful of doubles: held for arithmetic only, never across crypto.
  mutable std::mutex ControlMutex;
  double QueueEwmaMs = 0.0;                  ///< Guarded by ControlMutex.
  BrownoutMode Mode = BrownoutMode::Normal;  ///< Guarded by ControlMutex.
  size_t ModeTransitions = 0;                ///< Guarded by ControlMutex.
  double ServiceEwmaMs[SkCount] = {};        ///< Guarded by ControlMutex.
  size_t ServiceSamples[SkCount] = {};       ///< Guarded by ControlMutex.
};

} // namespace elide

#endif // SGXELIDE_SERVER_AUTHSERVER_H
