//===- analysis/LayoutCheck.cpp - AUD3xx layout / W^X check ----------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Layout and W^X check. SGX1 forbids changing page permissions after
/// EINIT, so a sanitized enclave must *ship* with a writable text segment
/// or `elide_restore`'s stores fault (AUD301) -- the paper's central
/// SGX1 constraint. SGX2 (`EMODPE` ablation) lifts that: text may ship
/// RX and be opened at restore time, so AUD301 is suppressed under
/// `SgxMode::Sgx2`. Independent of mode, nothing else may be W+X
/// (AUD302), a writable text with nothing elided is a gratuitous W+X
/// window (AUD303), regions must stay inside .text (AUD304), segments
/// must be EPC-page aligned or the loader rejects them (AUD305), the
/// metadata must describe the image it ships with (AUD306), and a
/// partial-restore region sharing an EPC page with surviving startup
/// code means the restore write touches live code (AUD307).
///
//===----------------------------------------------------------------------===//

#include "analysis/Audit.h"

#include <cstdio>

namespace elide {
namespace analysis {

namespace {

std::string hexString(uint64_t V) {
  char B[32];
  std::snprintf(B, sizeof(B), "%llx", (unsigned long long)V);
  return B;
}

} // namespace

void checkLayout(const AuditInput &Input, const AuditOptions &Options,
                 DiagnosticEngine &Engine) {
  const ElfImage &Image = *Input.Image;
  const ElfSection *Text = Image.sectionByName(Input.TextSection);
  std::vector<ElidedRegion> Regions = effectiveElidedRegions(Input, nullptr);

  // Locate the executable PT_LOAD covering .text.
  const ElfSegment *TextSeg = nullptr;
  size_t TextSegIndex = 0;
  for (size_t I = 0; I < Image.segments().size(); ++I) {
    const ElfSegment &Seg = Image.segments()[I];
    if (Seg.Type != PT_LOAD)
      continue;
    if (Text && Text->Addr >= Seg.VAddr &&
        Text->Addr < Seg.VAddr + Seg.MemSize) {
      TextSeg = &Seg;
      TextSegIndex = I;
    }
  }

  // --- AUD302: W+X on anything that is not the sanitized text. ---
  for (size_t I = 0; I < Image.segments().size(); ++I) {
    const ElfSegment &Seg = Image.segments()[I];
    if (Seg.Type != PT_LOAD || (TextSeg && I == TextSegIndex))
      continue;
    if ((Seg.Flags & PF_W) && (Seg.Flags & PF_X))
      Engine.report(AudWxSegment, Severity::Error,
                    "loadable segment " + std::to_string(I) +
                        " is writable and executable; only the sanitized "
                        "text segment may combine W and X",
                    "", Seg.VAddr, Seg.MemSize);
  }

  if (!Text || !TextSeg)
    return; // No text: the reachability checker reports the bigger problem.

  // --- AUD305: EPC pages are 4 KiB; the loader rejects misalignment. ---
  if (TextSeg->VAddr % AuditPageSize != 0)
    Engine.report(AudSegmentMisaligned, Severity::Error,
                  "text segment virtual address 0x" +
                      hexString(TextSeg->VAddr) + " is not EPC-page aligned",
                  Input.TextSection, 0, 0);

  bool TextWritable = (TextSeg->Flags & PF_W) != 0;

  // --- AUD301: SGX1 cannot change permissions after EINIT. ---
  if (Options.Mode == SgxMode::Sgx1 && !Regions.empty() && !TextWritable)
    Engine.report(AudTextNotWritable, Severity::Error,
                  "image has elided regions but its text segment is not "
                  "writable; under SGX1 the restore write faults (use "
                  "--sgx2 if EMODPE is assumed)",
                  Input.TextSection, 0, 0);

  // --- AUD303: writable text with nothing to restore. ---
  if (TextWritable && Regions.empty())
    Engine.report(AudWritableNoElision, Severity::Error,
                  "text segment is writable but no region is elided; the "
                  "image ships a gratuitous W+X mapping",
                  Input.TextSection, 0, 0);

  // --- AUD304: regions must stay inside the text section. ---
  for (const ElidedRegion &R : Regions) {
    if (R.Offset + R.Length > Text->Size || R.Offset + R.Length < R.Offset)
      Engine.report(AudRegionOutsideText, Severity::Error,
                    "elided region" +
                        (R.Name.empty() ? std::string()
                                        : " of '" + R.Name + "'") +
                        " escapes the text section (section size 0x" +
                        hexString(Text->Size) + ")",
                    Input.TextSection, R.Offset, R.Length, R.Name);
  }

  // --- AUD306: metadata must describe this image. ---
  if (Input.Meta) {
    const AuditMeta &M = *Input.Meta;
    if (M.DataLength == 0)
      Engine.report(AudMetaInconsistent, Severity::Error,
                    "secret metadata declares zero data length; nothing "
                    "would be restored",
                    Input.TextSection, 0, 0);
    if (M.DataLength > Text->Size)
      Engine.report(AudMetaInconsistent, Severity::Error,
                    "secret metadata declares " +
                        std::to_string(M.DataLength) +
                        " data bytes but the text section holds only " +
                        std::to_string(Text->Size),
                    Input.TextSection, 0, M.DataLength);
    if (M.RestoreOffset + 8 > Text->Size)
      Engine.report(AudMetaInconsistent, Severity::Error,
                    "restore offset " + std::to_string(M.RestoreOffset) +
                        " lies outside the text section",
                    Input.TextSection, M.RestoreOffset, 0);
  }

  // --- AUD307: partial restore must not share pages with live code. ---
  // Only meaningful when the restore granularity is finer than the whole
  // section: a full-text restore rewrites every page it touches anyway.
  bool PartialRestore = Input.Meta && Input.Meta->DataLength < Text->Size;
  if (PartialRestore) {
    Bytes Contents = Image.sectionContents(*Text);
    auto sharesLiveBytes = [&](uint64_t From, uint64_t To) {
      for (uint64_t I = From; I < To && I < Contents.size(); ++I)
        if (Contents[I] != 0)
          return true;
      return false;
    };
    for (const ElidedRegion &R : Regions) {
      if (R.Offset + R.Length > Text->Size)
        continue; // AUD304 already fired.
      uint64_t AbsStart = Text->Addr + R.Offset;
      uint64_t AbsEnd = AbsStart + R.Length;
      uint64_t PageStart = AbsStart & ~(AuditPageSize - 1);
      uint64_t PageEnd = (AbsEnd + AuditPageSize - 1) & ~(AuditPageSize - 1);
      uint64_t RelPageStart =
          PageStart > Text->Addr ? PageStart - Text->Addr : 0;
      uint64_t RelPageEnd = PageEnd - Text->Addr;
      bool Shares = sharesLiveBytes(RelPageStart, R.Offset) ||
                    sharesLiveBytes(R.Offset + R.Length, RelPageEnd);
      if (Shares)
        Engine.report(AudRegionSharesPage, Severity::Warning,
                      "elided region" +
                          (R.Name.empty() ? std::string()
                                          : " of '" + R.Name + "'") +
                          " shares an EPC page with surviving code; a "
                          "partial restore would write into a live page",
                      Input.TextSection, R.Offset, R.Length, R.Name);
    }
  }
}

} // namespace analysis
} // namespace elide
