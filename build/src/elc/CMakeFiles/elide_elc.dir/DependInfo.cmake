
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elc/CodeGen.cpp" "src/elc/CMakeFiles/elide_elc.dir/CodeGen.cpp.o" "gcc" "src/elc/CMakeFiles/elide_elc.dir/CodeGen.cpp.o.d"
  "/root/repo/src/elc/Compiler.cpp" "src/elc/CMakeFiles/elide_elc.dir/Compiler.cpp.o" "gcc" "src/elc/CMakeFiles/elide_elc.dir/Compiler.cpp.o.d"
  "/root/repo/src/elc/Lexer.cpp" "src/elc/CMakeFiles/elide_elc.dir/Lexer.cpp.o" "gcc" "src/elc/CMakeFiles/elide_elc.dir/Lexer.cpp.o.d"
  "/root/repo/src/elc/Parser.cpp" "src/elc/CMakeFiles/elide_elc.dir/Parser.cpp.o" "gcc" "src/elc/CMakeFiles/elide_elc.dir/Parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/elide_support.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/elide_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/elide_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
