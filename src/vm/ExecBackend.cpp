//===- vm/ExecBackend.cpp - Backend registry and shared plumbing ------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/ExecBackend.h"

#include <cstdio>
#include <cstdlib>

using namespace elide;

ExecBackend::~ExecBackend() = default;

const char *elide::vmBackendKindName(VmBackendKind Kind) {
  switch (Kind) {
  case VmBackendKind::Switch:
    return "switch";
  case VmBackendKind::Threaded:
    return "threaded";
  }
  return "unknown";
}

Expected<VmBackendKind> elide::parseVmBackendKind(std::string_view Name) {
  if (Name == "switch")
    return VmBackendKind::Switch;
  if (Name == "threaded")
    return VmBackendKind::Threaded;
  return makeError("unknown SVM backend '" + std::string(Name) +
                   "' (expected 'switch' or 'threaded')");
}

const std::vector<VmBackendKind> &elide::allVmBackendKinds() {
  static const std::vector<VmBackendKind> Kinds = {VmBackendKind::Switch,
                                                   VmBackendKind::Threaded};
  return Kinds;
}

VmBackendKind elide::defaultVmBackendKind() {
  static const VmBackendKind Kind = [] {
    if (const char *Env = std::getenv("ELIDE_SVM_BACKEND")) {
      Expected<VmBackendKind> Parsed = parseVmBackendKind(Env);
      if (Parsed)
        return *Parsed;
      std::fprintf(stderr,
                   "warning: ELIDE_SVM_BACKEND=%s ignored: %s\n", Env,
                   Parsed.errorMessage().c_str());
    }
    return VmBackendKind::Threaded;
  }();
  return Kind;
}

std::unique_ptr<ExecBackend> elide::createExecBackend(VmBackendKind Kind) {
  switch (Kind) {
  case VmBackendKind::Switch:
    return std::make_unique<SwitchBackend>();
  case VmBackendKind::Threaded:
    return std::make_unique<ThreadedBackend>();
  }
  return std::make_unique<SwitchBackend>();
}

//===----------------------------------------------------------------------===//
// Shared diagnostics
//===----------------------------------------------------------------------===//

std::string vmdetail::hexPc(uint64_t Pc) {
  char Buf[19];
  std::snprintf(Buf, sizeof(Buf), "0x%llx", static_cast<unsigned long long>(Pc));
  return Buf;
}

std::string vmdetail::illegalMessage(uint64_t Pc) {
  return "opcode 0 at pc " + hexPc(Pc) + " (sanitized or corrupted code?)";
}

std::string vmdetail::undefinedMessage(uint8_t RawOpcode) {
  char Buf[8];
  std::snprintf(Buf, sizeof(Buf), "0x%02x", RawOpcode);
  return std::string("undefined opcode ") + Buf;
}

std::string vmdetail::unalignedMessage(uint64_t Pc) {
  return "pc " + hexPc(Pc);
}

std::string vmdetail::budgetMessage(uint64_t Budget) {
  return "budget of " + std::to_string(Budget) + " exhausted";
}

std::string vmdetail::depthMessage(size_t MaxDepth) {
  return "depth " + std::to_string(MaxDepth);
}
