//===- server/Transport.cpp - Client/server transports ----------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Transport.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace elide;

Transport::~Transport() = default;

Expected<Bytes> LoopbackTransport::roundTrip(BytesView Request) {
  return Server.handle(Request);
}

Error elide::makeTransportError(TransportErrc Errc, std::string Message) {
  return makeError(static_cast<int>(Errc), std::move(Message));
}

TransportErrc elide::transportErrcOf(const Error &E) {
  int Code = E.code();
  return (Code >= static_cast<int>(TransportErrc::ConnectFailed) &&
          Code <= static_cast<int>(TransportErrcLast))
             ? static_cast<TransportErrc>(Code)
             : TransportErrc::None;
}

std::optional<uint32_t> elide::retryAfterHintOf(const std::string &Message) {
  const std::string Tag = "retry-after-ms=";
  size_t Pos = Message.find(Tag);
  if (Pos == std::string::npos)
    return std::nullopt;
  size_t Start = Pos + Tag.size();
  size_t End = Start;
  while (End < Message.size() && Message[End] >= '0' && Message[End] <= '9')
    ++End;
  if (End == Start || End - Start > 9)
    return std::nullopt;
  return static_cast<uint32_t>(std::stoul(Message.substr(Start, End - Start)));
}

//===----------------------------------------------------------------------===//
// Deadline socket IO
//===----------------------------------------------------------------------===//

namespace {

using Clock = std::chrono::steady_clock;

/// A point in time after which an IO operation gives up.
struct Deadline {
  Clock::time_point At;

  static Deadline in(int Ms) { return {Clock::now() + std::chrono::milliseconds(Ms)}; }

  /// Milliseconds left, clamped to [0, Slice]. Polling in slices lets the
  /// server observe its stop flag while parked on a quiet connection.
  int remainingMs(int Slice = 100) const {
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    At - Clock::now())
                    .count();
    if (Left <= 0)
      return 0;
    return static_cast<int>(Left < Slice ? Left : Slice);
  }

  bool expired() const { return Clock::now() >= At; }
};

void setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

/// Waits until \p Fd is ready for \p Events. Returns +1 ready, 0 deadline
/// expired (or \p Stop raised), -1 socket error.
int waitReady(int Fd, short Events, const Deadline &D,
              const std::atomic<bool> *Stop) {
  for (;;) {
    if (Stop && Stop->load())
      return 0;
    int Ms = D.remainingMs();
    pollfd Pfd{Fd, Events, 0};
    int N = ::poll(&Pfd, 1, Ms ? Ms : 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N > 0)
      return 1;
    if (D.expired())
      return 0;
  }
}

/// Writes all of \p Data before the deadline, riding out short writes.
Error sendAllDeadline(int Fd, const uint8_t *Data, size_t Len,
                      const Deadline &D, const std::atomic<bool> *Stop) {
  size_t Sent = 0;
  while (Sent < Len) {
    int Ready = waitReady(Fd, POLLOUT, D, Stop);
    if (Ready < 0)
      return makeTransportError(TransportErrc::PeerClosed,
                                std::string("send poll failed: ") +
                                    std::strerror(errno));
    if (Ready == 0)
      return makeTransportError(TransportErrc::WriteTimeout,
                                "write deadline exceeded after " +
                                    std::to_string(Sent) + "/" +
                                    std::to_string(Len) + " bytes");
    ssize_t N = ::send(Fd, Data + Sent, Len - Sent, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return makeTransportError(TransportErrc::PeerClosed,
                                std::string("send failed: ") +
                                    std::strerror(errno));
    }
    Sent += static_cast<size_t>(N);
  }
  return Error::success();
}

/// Reads exactly \p Len bytes before the deadline, riding out short reads.
/// \p GotOut reports progress so callers can tell "clean close between
/// frames" from "peer vanished mid-frame".
Error recvAllDeadline(int Fd, uint8_t *Data, size_t Len, const Deadline &D,
                      const std::atomic<bool> *Stop, size_t *GotOut = nullptr) {
  size_t Got = 0;
  while (Got < Len) {
    if (GotOut)
      *GotOut = Got;
    int Ready = waitReady(Fd, POLLIN, D, Stop);
    if (Ready < 0)
      return makeTransportError(TransportErrc::PeerClosed,
                                std::string("recv poll failed: ") +
                                    std::strerror(errno));
    if (Ready == 0)
      return makeTransportError(TransportErrc::ReadTimeout,
                                "read deadline exceeded after " +
                                    std::to_string(Got) + "/" +
                                    std::to_string(Len) + " bytes");
    ssize_t N = ::recv(Fd, Data + Got, Len - Got, 0);
    if (N == 0)
      return makeTransportError(TransportErrc::PeerClosed,
                                "connection closed after " +
                                    std::to_string(Got) + "/" +
                                    std::to_string(Len) + " bytes");
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return makeTransportError(TransportErrc::PeerClosed,
                                std::string("recv failed: ") +
                                    std::strerror(errno));
    }
    Got += static_cast<size_t>(N);
  }
  if (GotOut)
    *GotOut = Got;
  return Error::success();
}

Error sendFrameDeadline(int Fd, BytesView Frame, const Deadline &D,
                        const std::atomic<bool> *Stop) {
  uint8_t Len[4];
  writeLE32(Len, static_cast<uint32_t>(Frame.size()));
  if (Error E = sendAllDeadline(Fd, Len, 4, D, Stop))
    return E;
  return sendAllDeadline(Fd, Frame.data(), Frame.size(), D, Stop);
}

Expected<Bytes> recvFrameDeadline(int Fd, const Deadline &D,
                                  uint32_t MaxFrameBytes,
                                  const std::atomic<bool> *Stop,
                                  size_t *GotOut = nullptr) {
  uint8_t LenBytes[4];
  if (Error E = recvAllDeadline(Fd, LenBytes, 4, D, Stop, GotOut))
    return E;
  uint32_t Len = readLE32(LenBytes);
  if (Len > MaxFrameBytes)
    return makeTransportError(TransportErrc::FrameTooLarge,
                              "frame too large: " + std::to_string(Len));
  Bytes Frame(Len);
  if (Len) {
    size_t Got = 0;
    if (Error E = recvAllDeadline(Fd, Frame.data(), Len, D, Stop, &Got)) {
      if (GotOut)
        *GotOut += Got;
      return E;
    }
    if (GotOut)
      *GotOut += Len;
  }
  return Frame;
}

} // namespace

//===----------------------------------------------------------------------===//
// TcpServer
//===----------------------------------------------------------------------===//

Expected<std::unique_ptr<TcpServer>>
TcpServer::start(AuthServer &Server, const TcpServerConfig &Config) {
  ReactorConfig RC;
  RC.WorkerThreads = Config.WorkerThreads;
  RC.ReadTimeoutMs = Config.ReadTimeoutMs;
  RC.WriteTimeoutMs = Config.WriteTimeoutMs;
  RC.Backlog = Config.Backlog;
  RC.MaxFrameBytes = Config.MaxFrameBytes;
  RC.MaxConnections = Config.MaxConnections;
  RC.OverloadRetryAfterMs = Config.OverloadRetryAfterMs;
  RC.ForcePollBackend = Config.ForcePollBackend;
  ELIDE_TRY(std::unique_ptr<ReactorServer> Impl,
            ReactorServer::start(
                [Srv = &Server](BytesView Req, const FrameContext &Ctx) {
                  return Srv->handle(Req, Ctx);
                },
                RC));
  std::unique_ptr<TcpServer> S(new TcpServer());
  S->Impl = std::move(Impl);
  return S;
}

void TcpServer::stop() { Impl->stop(); }

TcpServerStats TcpServer::stats() const {
  ReactorStats R = Impl->stats();
  TcpServerStats S;
  S.ConnectionsAccepted = R.ConnectionsAccepted;
  S.ConnectionsShed = R.ConnectionsShed;
  S.FramesServed = R.FramesServed;
  S.ReadTimeouts = R.ReadTimeouts;
  S.WriteTimeouts = R.WriteTimeouts;
  return S;
}

TcpServer::~TcpServer() = default;

//===----------------------------------------------------------------------===//
// TcpClientTransport
//===----------------------------------------------------------------------===//

namespace {

/// RAII socket close.
struct FdGuard {
  int Fd;
  ~FdGuard() {
    if (Fd >= 0)
      ::close(Fd);
  }
};

/// Non-blocking connect bounded by a deadline.
Expected<int> connectDeadline(const std::string &Host, uint16_t Port,
                              int TimeoutMs) {
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1)
    return makeTransportError(TransportErrc::BadAddress,
                              "invalid server address " + Host);

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return makeTransportError(TransportErrc::ConnectFailed,
                              std::string("socket: ") + std::strerror(errno));
  FdGuard Guard{Fd};
  setNonBlocking(Fd);

  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    if (errno != EINPROGRESS)
      return makeTransportError(TransportErrc::ConnectFailed,
                                std::string("connect: ") +
                                    std::strerror(errno));
    int Ready = waitReady(Fd, POLLOUT, Deadline::in(TimeoutMs), nullptr);
    if (Ready <= 0)
      return makeTransportError(TransportErrc::ConnectTimeout,
                                "connect timed out after " +
                                    std::to_string(TimeoutMs) + " ms");
    int SoError = 0;
    socklen_t Len = sizeof(SoError);
    ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoError, &Len);
    if (SoError != 0)
      return makeTransportError(TransportErrc::ConnectFailed,
                                std::string("connect: ") +
                                    std::strerror(SoError));
  }
  Guard.Fd = -1; // Ownership passes to the caller.
  return Fd;
}

} // namespace

Expected<Bytes> TcpClientTransport::attemptOnce(BytesView Request,
                                                int ConnectTimeoutMs,
                                                int IoTimeoutMs) {
  ELIDE_TRY(int Fd, connectDeadline(Host, Port, ConnectTimeoutMs));
  FdGuard Guard{Fd};
  if (Error E =
          sendFrameDeadline(Fd, Request, Deadline::in(IoTimeoutMs), nullptr))
    return E;
  return recvFrameDeadline(Fd, Deadline::in(IoTimeoutMs), 64u << 20, nullptr);
}

Expected<Bytes> TcpClientTransport::roundTrip(BytesView Request) {
  int Attempts = Config.MaxAttempts > 0 ? Config.MaxAttempts : 1;

  // An enveloped request carries its remaining budget; track it across
  // the whole loop (attempts, backoff sleeps) and re-stamp each attempt
  // with what is actually left so the server sees the truth, not the
  // budget as of the first try. A malformed envelope is sent as-is: the
  // server owns the canonical rejection.
  uint32_t DeadlineMs = 0;
  Criticality Class = Criticality::Default;
  BytesView Inner = Request;
  if (Expected<RequestEnvelope> Env = unwrapRequest(Request)) {
    DeadlineMs = Env->DeadlineMs;
    Class = Env->Class;
    Inner = Env->Inner;
  }
  Clock::time_point Start = Clock::now();
  auto remainingMs = [&]() -> long long {
    return static_cast<long long>(DeadlineMs) -
           std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 Start)
               .count();
  };
  auto deadlineError = [&](const std::string &Where) {
    return makeTransportError(TransportErrc::DeadlineExceeded,
                              "request deadline (" +
                                  std::to_string(DeadlineMs) +
                                  " ms) exceeded " + Where);
  };

  Error Last;
  std::optional<uint32_t> OverloadHint;
  for (int Attempt = 1; Attempt <= Attempts; ++Attempt) {
    if (Attempt > 1) {
      // Exponential backoff with deterministic jitter: base * 2^(n-1),
      // capped, plus up to 50% random spread so a fleet of clients
      // recovering from the same outage does not reconnect in lockstep.
      long long Backoff = static_cast<long long>(Config.BackoffBaseMs)
                          << (Attempt - 2);
      if (Backoff > Config.BackoffMaxMs)
        Backoff = Config.BackoffMaxMs;
      long long Spread;
      {
        std::lock_guard<std::mutex> Lock(JitterMutex);
        Spread = Backoff > 1
                     ? static_cast<long long>(Jitter.nextBelow(Backoff / 2 + 1))
                     : 0;
      }
      long long Wait = Backoff + Spread;
      // A shed server's retry-after hint is a floor under the wait:
      // reconnecting sooner than the server asked just feeds the overload.
      if (OverloadHint && static_cast<long long>(*OverloadHint) > Wait)
        Wait = *OverloadHint;
      if (DeadlineMs && Wait >= remainingMs())
        return deadlineError("waiting out the retry backoff");
      std::this_thread::sleep_for(std::chrono::milliseconds(Wait));
    }

    int ConnectMs = Config.ConnectTimeoutMs;
    int IoMs = Config.IoTimeoutMs;
    Bytes Stamped;
    BytesView Wire = Request;
    if (DeadlineMs) {
      long long Left = remainingMs();
      if (Left <= 0)
        return deadlineError("before attempt " + std::to_string(Attempt));
      // No single operation may outlive the request: clamp the per-
      // operation timeouts to the remaining budget.
      ConnectMs = static_cast<int>(std::min<long long>(ConnectMs, Left));
      IoMs = static_cast<int>(std::min<long long>(IoMs, Left));
      Stamped = envelopeFrame(static_cast<uint32_t>(Left), Class, Inner);
      Wire = Stamped;
    }

    LastAttempts.store(Attempt);
    Expected<Bytes> Response = attemptOnce(Wire, ConnectMs, IoMs);
    if (Response) {
      if (std::optional<uint32_t> After = overloadedRetryAfterMs(*Response)) {
        // Backpressure is not payload. By default it surfaces as a typed
        // error immediately (no intra-transport retry burn) so a failover
        // layer can move to another endpoint; with RetryOverloaded the
        // client stays on this endpoint and honors the hint above.
        Error Shed = makeTransportError(TransportErrc::Overloaded,
                                        "server shed load; retry-after-ms=" +
                                            std::to_string(*After));
        if (!Config.RetryOverloaded)
          return Shed;
        OverloadHint = After;
        Last = std::move(Shed);
        continue;
      }
      return Response;
    }
    Error E = Response.takeError();
    TransportErrc Errc = transportErrcOf(E);
    if (!isRetryableTransportErrc(Errc))
      return E;
    Last = std::move(E);
    OverloadHint.reset();
  }
  if (Attempts == 1)
    return Last; // No retry budget: surface the underlying kind directly.
  return makeTransportError(TransportErrc::RetriesExhausted,
                            "retry budget exhausted after " +
                                std::to_string(Attempts) +
                                " attempts; last error: " + Last.message());
}
