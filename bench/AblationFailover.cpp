//===- bench/AblationFailover.cpp - Provisioning failover ablation ------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What resilience costs when nothing is wrong, and what degradation
/// costs when something is. Three restore paths through the Provisioner
/// chain: every endpoint healthy (failover machinery on the hot path but
/// idle), first endpoint dead (one failed attempt + breaker bookkeeping
/// before the fallback answers), and cache-only (every endpoint down, the
/// sealed blob on disk is the only source -- the paper's offline-relaunch
/// case, which never touches the network at all).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "elide/Provisioner.h"
#include "sgx/EnclaveLoader.h"
#include "support/File.h"
#include "support/Stats.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace elide;
using namespace elide::bench;

namespace {

constexpr int PaperRuns = 10;

/// An endpoint that is down: every round trip fails immediately, the way
/// a refused TCP connect does.
class DeadTransport : public Transport {
public:
  Expected<Bytes> roundTrip(BytesView) override {
    return makeTransportError(TransportErrc::ConnectFailed,
                              "bench endpoint is down: connection refused");
  }
};

/// Like BenchScenario::launchSanitized, but over an arbitrary transport
/// and with an optional sealed-cache path.
BenchScenario::Launch launchOver(BenchScenario &S, Transport *Link,
                                 const std::string &SealedPath) {
  BenchScenario::Launch L;
  Expected<std::unique_ptr<sgx::Enclave>> E =
      sgx::loadEnclave(*S.Device, S.Artifacts.SanitizedElf,
                       S.Artifacts.SanitizedSig, S.Options.Layout);
  if (!E)
    std::abort();
  L.E = E.takeValue();
  L.Host = std::make_unique<ElideHost>(Link, S.Qe.get());
  if (!SealedPath.empty())
    L.Host->setSealedPath(SealedPath);
  L.Host->attach(*L.E);
  return L;
}

/// One cold restore over \p Link; returns wall milliseconds.
double restoreOnce(BenchScenario &S, Transport *Link,
                   const std::string &SealedPath = "") {
  BenchScenario::Launch L = launchOver(S, Link, SealedPath);
  Timer T;
  Expected<uint64_t> Status = L.Host->restore(*L.E, RestorePolicy{});
  double Ms = T.elapsedMs();
  if (!Status || *Status != 0)
    std::abort();
  return Ms;
}

ProvisionerConfig benchBreakers() {
  ProvisionerConfig Config;
  // A threshold of 1 makes the dead-first-endpoint runs representative of
  // steady state: after the first cold restore the breaker is open and
  // later restores skip the dead endpoint without re-probing it (cooldown
  // far beyond the benchmark's runtime).
  Config.Breaker.FailureThreshold = 1;
  Config.Breaker.CooldownMs = 600000;
  return Config;
}

std::string cachePathFor(const std::string &AppName) {
  return "/tmp/sgxelide_bench_failover_" + AppName + ".sealed";
}

/// Seeds the sealed cache for \p S by running one healthy restore with
/// persistence on, so the cache-only runs have a blob to unseal.
void seedCache(BenchScenario &S, const std::string &Path) {
  removeFile(Path);
  Provisioner Healthy;
  Healthy.addEndpoint("loopback", S.Link.get());
  if (restoreOnce(S, &Healthy, Path) < 0 || !fileExists(Path))
    std::abort();
}

} // namespace

int main(int argc, char **argv) {
  for (const apps::AppSpec &App : apps::allApps()) {
    benchmark::RegisterBenchmark(
        ("BM_FailoverHealthy/" + App.Name).c_str(),
        [&App](benchmark::State &State) {
          BenchScenario &S = scenarioFor(App.Name, SecretStorage::Remote);
          Provisioner Chain(benchBreakers());
          Chain.addEndpoint("primary", S.Link.get());
          Chain.addEndpoint("secondary", S.Link.get());
          for (auto _ : State)
            benchmark::DoNotOptimize(restoreOnce(S, &Chain));
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(PaperRuns);
    benchmark::RegisterBenchmark(
        ("BM_FailoverFirstDead/" + App.Name).c_str(),
        [&App](benchmark::State &State) {
          BenchScenario &S = scenarioFor(App.Name, SecretStorage::Remote);
          DeadTransport Dead;
          Provisioner Chain(benchBreakers());
          Chain.addEndpoint("dead-primary", &Dead);
          Chain.addEndpoint("secondary", S.Link.get());
          for (auto _ : State)
            benchmark::DoNotOptimize(restoreOnce(S, &Chain));
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(PaperRuns);
    benchmark::RegisterBenchmark(
        ("BM_FailoverCacheOnly/" + App.Name).c_str(),
        [&App](benchmark::State &State) {
          BenchScenario &S = scenarioFor(App.Name, SecretStorage::Remote);
          std::string Path = cachePathFor(App.Name);
          seedCache(S, Path);
          DeadTransport Dead;
          Provisioner Chain(benchBreakers());
          Chain.addEndpoint("dead-primary", &Dead);
          Chain.addEndpoint("dead-secondary", &Dead);
          for (auto _ : State)
            benchmark::DoNotOptimize(restoreOnce(S, &Chain, Path));
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(PaperRuns);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  printTableHeader("Ablation: provisioning failover -- restore latency by "
                   "degradation level");
  std::printf("%-9s %14s %18s %16s\n", "Bench", "Healthy (ms)",
              "First dead (ms)", "Cache only (ms)");
  std::printf("%.*s\n", 62,
              "---------------------------------------------------------------"
              "-----------");

  for (const apps::AppSpec &App : apps::allApps()) {
    BenchScenario &S = scenarioFor(App.Name, SecretStorage::Remote);

    std::vector<double> Healthy, FirstDead, CacheOnly;
    {
      Provisioner Chain(benchBreakers());
      Chain.addEndpoint("primary", S.Link.get());
      Chain.addEndpoint("secondary", S.Link.get());
      for (int Run = 0; Run < PaperRuns; ++Run)
        Healthy.push_back(restoreOnce(S, &Chain));
    }
    {
      DeadTransport Dead;
      Provisioner Chain(benchBreakers());
      Chain.addEndpoint("dead-primary", &Dead);
      Chain.addEndpoint("secondary", S.Link.get());
      for (int Run = 0; Run < PaperRuns; ++Run)
        FirstDead.push_back(restoreOnce(S, &Chain));
    }
    {
      std::string Path = cachePathFor(App.Name);
      seedCache(S, Path);
      DeadTransport Dead;
      Provisioner Chain(benchBreakers());
      Chain.addEndpoint("dead-primary", &Dead);
      Chain.addEndpoint("dead-secondary", &Dead);
      for (int Run = 0; Run < PaperRuns; ++Run)
        CacheOnly.push_back(restoreOnce(S, &Chain, Path));
      removeFile(Path);
    }

    Summary H = summarize(Healthy);
    Summary D = summarize(FirstDead);
    Summary C = summarize(CacheOnly);
    std::printf("%-9s %8.2f±%4.2f %12.2f±%4.2f %10.2f±%4.2f\n",
                App.Name.c_str(), H.Mean, H.StdDev, D.Mean, D.StdDev, C.Mean,
                C.StdDev);
  }
  std::printf("\nExpected shape: a healthy chain prices the failover machinery "
              "at ~zero; a dead\nfirst endpoint costs one failed attempt on "
              "the cold run and a breaker skip after;\ncache-only restores "
              "unseal from disk and never pay a network round trip.\n");
  return 0;
}
