//===- server/SessionStore.cpp - Mutex-striped session/key store ----------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/SessionStore.h"

using namespace elide;

SessionStore::SessionStore(const SessionStoreConfig &Config) {
  size_t Shards = 1;
  while (Shards < Config.Shards && Shards < (1u << 16))
    Shards <<= 1;
  ShardMask = Shards - 1;
  PerShardCap = Config.MaxSessions / Shards;
  if (PerShardCap == 0)
    PerShardCap = 1;
  ShardList.reserve(Shards);
  for (size_t I = 0; I < Shards; ++I)
    ShardList.push_back(std::make_unique<Shard>(
        Config.RngSeed ^ (0x9e3779b97f4a7c15ULL * (I + 1)) ^ 0x53484152ULL));
}

uint64_t SessionStore::mint(const SessionKeys &Keys) {
  // The minting shard is chosen by the generator's first draw, then the
  // id's low bits are forced onto that shard so shardOf(id) is pure bit
  // math on the lookup path.
  uint64_t Draw;
  size_t ShardIdx =
      MintSpread.fetch_add(1, std::memory_order_relaxed) & ShardMask;
  Shard &S = *ShardList[ShardIdx];
  std::lock_guard<std::mutex> Lock(S.Mutex);
  uint64_t Sid;
  do {
    Draw = S.Rng.next64();
    Sid = (Draw & ~static_cast<uint64_t>(ShardMask)) | ShardIdx;
  } while (Sid == 0 || S.Sessions.count(Sid));

  if (S.Sessions.size() >= PerShardCap) {
    auto Oldest = S.Sessions.begin();
    for (auto It = S.Sessions.begin(); It != S.Sessions.end(); ++It)
      if (It->second.Sequence < Oldest->second.Sequence)
        Oldest = It;
    S.Sessions.erase(Oldest);
    Evictions.fetch_add(1, std::memory_order_relaxed);
    LiveSessions.fetch_sub(1, std::memory_order_relaxed);
  }

  Session &New = S.Sessions[Sid];
  New.Keys = Keys;
  New.Sequence = S.NextSequence++;
  LiveSessions.fetch_add(1, std::memory_order_relaxed);
  return Sid;
}

SessionTouch SessionStore::touch(uint64_t Sid, size_t MaxRequestsPerSession,
                                 SessionKeys &KeysOut) {
  Shard &S = *ShardList[shardOf(Sid)];
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Sessions.find(Sid);
  if (It == S.Sessions.end())
    return SessionTouch::Unknown;
  if (MaxRequestsPerSession &&
      It->second.RequestsServed >= MaxRequestsPerSession) {
    S.Sessions.erase(It);
    LiveSessions.fetch_sub(1, std::memory_order_relaxed);
    return SessionTouch::BudgetExhausted;
  }
  ++It->second.RequestsServed;
  KeysOut = It->second.Keys;
  return SessionTouch::Ok;
}

bool SessionStore::erase(uint64_t Sid) {
  Shard &S = *ShardList[shardOf(Sid)];
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (S.Sessions.erase(Sid) == 0)
    return false;
  LiveSessions.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

size_t SessionStore::size() const {
  return LiveSessions.load(std::memory_order_relaxed);
}
