//===- tests/fuzz/FuzzVmDiff.cpp - SVM backend differential fuzz target -----===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential fuzz target for the SVM execution backends: the input
/// bytes are a program, and every backend must agree with the reference
/// switch interpreter on the complete architectural outcome -- trap
/// kind, pc, retired count, return value, message, registers, memory.
/// Any byte string is a valid program (the ISA traps on garbage), so
/// libFuzzer's mutations explore the decode/fusion/invalidation space
/// directly; the corpus seeds it with fusible shapes, self-modifying
/// stores, and budget-boundary loops.
///
//===----------------------------------------------------------------------===//

#include "tests/fuzz/FuzzCommon.h"

#include "tests/framework/VmDiff.h"

namespace {

using namespace elide;

/// One shared configuration: inputs longer than the code window are
/// truncated so runtime stays bounded, and a small budget keeps even
/// pathological loops cheap while exercising budget-trap parity.
vmdiff::ProgramOptions fuzzOptions() {
  vmdiff::ProgramOptions Opts;
  Opts.MaxInstructions = 256;
  Opts.Budget = 2048;
  return Opts;
}

void fuzzVmDiffOne(BytesView Input) {
  vmdiff::ProgramOptions Opts = fuzzOptions();
  size_t MaxBytes = Opts.MaxInstructions * SvmInstrSize;
  if (Input.size() > MaxBytes)
    Input = Input.subspan(0, MaxBytes);
  std::string Divergence = vmdiff::diffProgram(Input, Opts);
  FUZZ_ASSERT(Divergence.empty());
}

/// Structure-aware generator for sweep mode: the vmdiff program builder,
/// under the same options the one-input entry point executes with.
Bytes buildVmDiffProgram(Drbg &Rng) {
  vmdiff::ProgramOptions Opts = fuzzOptions();
  return vmdiff::generateProgram(Rng, Opts);
}

} // namespace

#ifdef ELIDE_LIBFUZZER_DRIVER

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  fuzzVmDiffOne(elide::BytesView(Data, Size));
  return 0;
}

#else // gtest replay + generative sweep

#include "tests/framework/FuzzHarness.h"

#include <gtest/gtest.h>

TEST(VmDiffFuzz, CorpusReplay) {
  elide::Expected<size_t> N =
      elide::fuzz::replayCorpus("vmdiff", fuzzVmDiffOne);
  ASSERT_TRUE(static_cast<bool>(N)) << N.errorMessage();
  EXPECT_GE(*N, 6u) << "vmdiff corpus lost its seed entries";
}

TEST(VmDiffFuzz, GeneratedSweep) {
  elide::fuzz::generativeSweep(fuzzVmDiffOne, buildVmDiffProgram,
                               /*Seed=*/0x564d444946460a01ull,
                               /*Iterations=*/300);
}

#endif // ELIDE_LIBFUZZER_DRIVER
