//===- elide/Whitelist.h - Whitelist generation (paper section 4.1) -------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SgxElide uses a whitelist, not a blacklist (paper section 3.2): instead
/// of the developer annotating which functions are secret, the framework
/// derives the set of functions that must *not* be redacted -- everything
/// a minimal "dummy" enclave contains (the SgxElide runtime plus the SGX
/// SDK libraries it links). Any function absent from that set is a user
/// function and is sanitized.
///
/// The whitelist is derived once from dummy.so and reused for every
/// application enclave; developers never touch it.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_ELIDE_WHITELIST_H
#define SGXELIDE_ELIDE_WHITELIST_H

#include "support/Bytes.h"
#include "support/Error.h"

#include <set>
#include <string>

namespace elide {

/// The set of function names that survive sanitization.
class Whitelist {
public:
  Whitelist() = default;

  /// Builds the whitelist from a dummy enclave image: every function
  /// symbol it defines is framework/SDK code.
  static Expected<Whitelist> fromDummyEnclave(BytesView DummyElfFile);

  /// Returns true when \p FunctionName must be preserved. Ecall bridge
  /// functions (the SDK-generated dispatch stubs, `__bridge_*`) are always
  /// preserved: redacting them would crash the enclave entry path before
  /// restoration could run (paper section 3.1).
  bool contains(const std::string &FunctionName) const;

  /// Adds one name (used by tests and the blacklist ablation).
  void add(const std::string &FunctionName) { Names.insert(FunctionName); }

  size_t size() const { return Names.size(); }
  const std::set<std::string> &names() const { return Names; }

  /// Text format: one function name per line.
  std::string serialize() const;
  static Expected<Whitelist> deserialize(const std::string &Text);

private:
  std::set<std::string> Names;
};

} // namespace elide

#endif // SGXELIDE_ELIDE_WHITELIST_H
