//===- tests/fuzz/FuzzWhitelist.cpp - Whitelist decode fuzz target ----------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fuzz target for `Whitelist::deserialize`. The whitelist file travels
/// with the build system, not the enclave, but the sanitizer consumes it
/// from disk and a corrupted or attacker-substituted file must fail
/// closed. Properties: empty inputs are rejected (an empty whitelist
/// would sanitize nothing); accepted lists are canonical under
/// serialize/deserialize; membership queries are total, including the
/// always-whitelisted bridge prefix.
///
//===----------------------------------------------------------------------===//

#include "tests/fuzz/FuzzCommon.h"

#include "elc/Compiler.h"
#include "elide/Whitelist.h"

namespace {

using namespace elide;

void fuzzWhitelistOne(BytesView Input) {
  std::string Text = stringOfBytes(Input);
  Expected<Whitelist> W = Whitelist::deserialize(Text);
  if (!W) {
    // The only rejection is the empty list: every non-empty line is a
    // name, so failure means no non-empty line existed.
    for (char C : Text)
      FUZZ_ASSERT(C == '\n');
    return;
  }
  FUZZ_ASSERT(W->size() > 0);

  // Canonical round-trip: serialize -> deserialize -> serialize fixes.
  std::string Canonical = W->serialize();
  Expected<Whitelist> Again = Whitelist::deserialize(Canonical);
  FUZZ_ASSERT(static_cast<bool>(Again));
  FUZZ_ASSERT(Again->size() == W->size());
  FUZZ_ASSERT(Again->serialize() == Canonical);

  // Membership is total and bridge stubs are always preserved.
  for (const std::string &Name : W->names())
    FUZZ_ASSERT(W->contains(Name));
  FUZZ_ASSERT(W->contains(std::string(elc::bridgePrefix()) + "anything"));
}

} // namespace

#ifdef ELIDE_LIBFUZZER_DRIVER

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  fuzzWhitelistOne(elide::BytesView(Data, Size));
  return 0;
}

#else // gtest replay + generative sweep

#include "tests/framework/Builders.h"
#include "tests/framework/FuzzHarness.h"

#include <gtest/gtest.h>

TEST(WhitelistFuzz, CorpusReplay) {
  elide::Expected<size_t> N =
      elide::fuzz::replayCorpus("whitelist", fuzzWhitelistOne);
  ASSERT_TRUE(static_cast<bool>(N)) << N.errorMessage();
  EXPECT_GE(*N, 3u) << "whitelist corpus lost its seed entries";
}

TEST(WhitelistFuzz, GeneratedSweep) {
  elide::fuzz::generativeSweep(fuzzWhitelistOne,
                               elide::fuzz::buildWhitelistText,
                               /*Seed=*/0x57484954454c4953ull,
                               /*Iterations=*/2000);
}

#endif // ELIDE_LIBFUZZER_DRIVER
