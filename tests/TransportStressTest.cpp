//===- tests/TransportStressTest.cpp - Concurrent restore stress ------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Many clients restoring against one authentication server at once: the
/// paper's deployment story is one developer server provisioning a fleet
/// of user machines. Each test thread models one machine (its own SGX
/// device, quoting enclave, and TCP connection); the server must keep
/// every concurrent session separate and never cross-contaminate key
/// material or secret payloads.
///
//===----------------------------------------------------------------------===//

#include "elide/HostRuntime.h"
#include "elide/Pipeline.h"
#include "server/AuthServer.h"
#include "server/Transport.h"
#include "sgx/EnclaveLoader.h"
#include "tests/framework/ChaosSeed.h"
#include "tests/framework/TestNet.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace elide;

namespace {

const char *SecretAppSource = R"elc(
fn secret_constant() -> u64 {
  return 0xc0ffee;
}

fn secret_transform(x: u64) -> u64 {
  var acc: u64 = secret_constant();
  for (var i: u64 = 0; i < 16; i = i + 1) {
    acc = acc * 31 + (x ^ (acc >> 7));
  }
  return acc;
}

export fn run_secret(inp: *u8, inlen: u64, outp: *u8, outcap: u64) -> u64 {
  var x: u64 = 0;
  if (inlen >= 8) {
    x = load_le64(inp);
  }
  var r: u64 = secret_transform(x);
  if (outcap >= 8) {
    store_le64(outp, r);
  }
  return 0;
}
)elc";

uint64_t referenceTransform(uint64_t X) {
  uint64_t Acc = 0xc0ffee;
  for (int I = 0; I < 16; ++I)
    Acc = Acc * 31 + (X ^ (Acc >> 7));
  return Acc;
}

/// Shared read-only provisioning: one build, one server, many machines.
struct Fleet {
  BuildArtifacts Artifacts;
  BuildOptions Options;
  std::unique_ptr<AuthServer> Server;

  /// The authority seed every machine's QE certifies under (the same seed
  /// yields the same key pair, which the server pins).
  static constexpr uint64_t AuthoritySeed = 2002;

  static std::unique_ptr<Fleet> make() {
    auto F = std::make_unique<Fleet>();
    Drbg Rng(42);
    Ed25519Seed Seed{};
    Rng.fill(MutableBytesView(Seed.data(), 32));
    Ed25519KeyPair Vendor = ed25519KeyPairFromSeed(Seed);
    F->Options.Storage = SecretStorage::Remote;
    Expected<BuildArtifacts> Artifacts = buildProtectedEnclave(
        {{"secret_app.elc", SecretAppSource}}, Vendor, F->Options);
    if (!Artifacts) {
      ADD_FAILURE() << "pipeline failed: " << Artifacts.errorMessage();
      return nullptr;
    }
    F->Artifacts = Artifacts.takeValue();

    sgx::AttestationAuthority Authority(AuthoritySeed);
    AuthServerConfig Config;
    Config.AuthorityKey = Authority.publicKey();
    ServerProvisioning P = provisioningFor(F->Artifacts, F->Options);
    Config.ExpectedMrEnclave = P.SanitizedMrEnclave;
    Config.ExpectedMrSigner = P.MrSigner;
    Config.Meta = F->Artifacts.Meta;
    Config.SecretData = F->Artifacts.SecretData;
    F->Server = std::make_unique<AuthServer>(std::move(Config));
    return F;
  }
};

/// One user machine: runs \p Rounds full launch+restore cycles over \p
/// Client, each with a fresh enclave and host (so every round pays the
/// whole handshake, never the sealing fast path).
void runMachine(const Fleet &F, Transport &Client, uint64_t MachineId,
                int Rounds, std::atomic<size_t> &Failures) {
  // Distinct device seed per machine; the same authority seed everywhere
  // so the fleet's quotes verify against the server's pinned key.
  sgx::SgxDevice Device(10000 + MachineId);
  sgx::AttestationAuthority Authority(Fleet::AuthoritySeed);
  sgx::QuotingEnclave Qe(Device, Authority);

  for (int Round = 0; Round < Rounds; ++Round) {
    Expected<std::unique_ptr<sgx::Enclave>> E =
        sgx::loadEnclave(Device, F.Artifacts.SanitizedElf,
                         F.Artifacts.SanitizedSig, F.Options.Layout);
    if (!E) {
      ADD_FAILURE() << "machine " << MachineId << ": " << E.errorMessage();
      Failures.fetch_add(1);
      return;
    }
    ElideHost Host(&Client, &Qe);
    Host.attach(**E);
    Expected<uint64_t> Status = Host.restore(**E);
    if (!Status || *Status != 0) {
      ADD_FAILURE() << "machine " << MachineId << " round " << Round
                    << ": restore failed: "
                    << (Status ? restoreStatusName(*Status)
                               : Status.errorMessage().c_str());
      Failures.fetch_add(1);
      continue;
    }

    // A machine-unique input: a cross-contaminated session (wrong keys or
    // another client's payload spliced in) would show up as a GCM failure
    // above or a wrong transform output here.
    uint64_t Input = MachineId * 1000 + static_cast<uint64_t>(Round);
    Bytes In(8);
    writeLE64(In.data(), Input);
    Expected<sgx::EcallResult> R = (*E)->ecall("run_secret", In, 8);
    if (!R || !R->ok() ||
        readLE64(R->Output.data()) != referenceTransform(Input)) {
      ADD_FAILURE() << "machine " << MachineId << " round " << Round
                    << ": restored code produced wrong output";
      Failures.fetch_add(1);
    }
  }
}

TEST(TransportStressTest, SixteenMachinesRestoreConcurrentlyOverTcp) {
  elide::testing::ChaosSeedScope Seed("transport-stress", 100);
  constexpr int Machines = 16;
  constexpr int Rounds = 2;

  auto F = Fleet::make();
  ASSERT_NE(F, nullptr);
  TcpServerConfig ServerConfig;
  ServerConfig.WorkerThreads = 8;
  Expected<std::unique_ptr<TcpServer>> Tcp =
      TcpServer::start(*F->Server, ServerConfig);
  ASSERT_TRUE(static_cast<bool>(Tcp)) << Tcp.errorMessage();

  std::atomic<size_t> Failures{0};
  std::vector<std::unique_ptr<TcpClientTransport>> Clients;
  std::vector<std::thread> Threads;
  for (int I = 0; I < Machines; ++I) {
    TcpClientConfig ClientConfig;
    ClientConfig.MaxAttempts = 3;
    ClientConfig.JitterSeed = Seed.derived(static_cast<uint64_t>(I));
    Clients.push_back(std::make_unique<TcpClientTransport>(
        "127.0.0.1", (*Tcp)->port(), ClientConfig));
  }
  for (int I = 0; I < Machines; ++I)
    Threads.emplace_back([&, I] {
      runMachine(*F, *Clients[I], static_cast<uint64_t>(I), Rounds, Failures);
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Failures.load(), 0u);

  // Every round was a full exchange: handshake + meta + data, no drops.
  constexpr size_t Total = Machines * Rounds;
  AuthServerStats Stats = F->Server->stats();
  EXPECT_EQ(Stats.HandshakesCompleted, Total);
  EXPECT_EQ(Stats.HandshakesRejected, 0u);
  EXPECT_EQ(Stats.MetaRequests, Total);
  EXPECT_EQ(Stats.DataRequests, Total);
  EXPECT_EQ(Stats.LiveSessions, Total);

  TcpServerStats Net = (*Tcp)->stats();
  EXPECT_GE(Net.ConnectionsAccepted, Total);
  EXPECT_GE(Net.FramesServed, Total * 3);
  EXPECT_EQ(Net.ReadTimeouts, 0u);
  EXPECT_EQ(Net.WriteTimeouts, 0u);
  (*Tcp)->stop();
}

TEST(TransportStressTest, ConcurrentLoopbackSessionsStaySeparate) {
  // The same fleet without sockets: isolates the AuthServer's session
  // bookkeeping from transport effects.
  constexpr int Machines = 8;
  constexpr int Rounds = 2;
  auto F = Fleet::make();
  ASSERT_NE(F, nullptr);
  LoopbackTransport Link(*F->Server);

  std::atomic<size_t> Failures{0};
  std::vector<std::thread> Threads;
  for (int I = 0; I < Machines; ++I)
    Threads.emplace_back([&, I] {
      runMachine(*F, Link, static_cast<uint64_t>(I), Rounds, Failures);
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(F->Server->stats().HandshakesCompleted,
            static_cast<size_t>(Machines * Rounds));
}

TEST(TransportStressTest, StopDrainsWithClientsMidSession) {
  // stop() while clients are connected: in-flight exchanges finish,
  // nothing hangs, and the server refuses new work afterwards.
  auto F = Fleet::make();
  ASSERT_NE(F, nullptr);
  Expected<std::unique_ptr<TcpServer>> Tcp = TcpServer::start(*F->Server);
  ASSERT_TRUE(static_cast<bool>(Tcp)) << Tcp.errorMessage();
  uint16_t Port = (*Tcp)->port();

  std::atomic<bool> Quit{false};
  std::vector<std::thread> Threads;
  for (int I = 0; I < 4; ++I)
    Threads.emplace_back([&] {
      TcpClientConfig Config;
      Config.MaxAttempts = 1;
      TcpClientTransport Client("127.0.0.1", Port, Config);
      while (!Quit.load())
        (void)Client.roundTrip(Bytes{0x99}); // Garbage; server answers ERROR.
    });

  // Let the hammering run briefly, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  (*Tcp)->stop();
  Quit.store(true);
  for (std::thread &T : Threads)
    T.join();

  // The listener is gone: fresh connections now fail with a typed error.
  // Park the freed port ourselves first (bound, not listening) so a
  // parallel test adopting the same ephemeral port cannot turn this
  // refusal into an accidental success. If the port was already taken,
  // the refusal claim is unprovable -- skip it rather than flake.
  int Parked = elide::testing::tryBindPort(Port);
  if (Parked < 0)
    GTEST_SKIP() << "freed port already re-bound by another process";
  TcpClientConfig Config;
  Config.MaxAttempts = 1;
  TcpClientTransport After("127.0.0.1", Port, Config);
  Expected<Bytes> R = After.roundTrip(Bytes{1});
  ::close(Parked);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(transportErrcOf(R), TransportErrc::None);
}

} // namespace
