//===- support/Error.h - Lightweight recoverable error handling ----------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small `Error` / `Expected<T>` pair modeled on LLVM's recoverable error
/// scheme. Errors carry a message string; `Expected<T>` holds either a value
/// or an error. Unlike LLVM's version these do not abort on unchecked
/// destruction -- they are plain value types -- but the usage idioms
/// (early-exit on failure, `takeError`, `ELIDE_TRY`) are the same.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_SUPPORT_ERROR_H
#define SGXELIDE_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace elide {

/// A recoverable error: either success (empty) or a failure message,
/// optionally tagged with a numeric code so callers can branch on the
/// failure kind without parsing the message (subsystems define their own
/// code spaces; 0 means "uncategorized").
///
/// Converts to `true` when it holds a failure, enabling
/// `if (Error E = mayFail()) return E;`.
class Error {
public:
  /// Constructs a success value.
  Error() = default;

  /// Constructs a failure carrying \p Message.
  static Error failure(std::string Message) {
    Error E;
    E.Message = std::move(Message);
    return E;
  }

  /// Constructs a failure carrying \p Message tagged with \p Code.
  static Error failure(int Code, std::string Message) {
    Error E = failure(std::move(Message));
    E.Code = Code;
    return E;
  }

  /// Constructs a success value (readability alias for `Error()`).
  static Error success() { return Error(); }

  /// Returns true when this is a failure.
  explicit operator bool() const { return Message.has_value(); }

  /// Returns the failure message. Must only be called on failures.
  const std::string &message() const {
    assert(Message && "message() on a success Error");
    return *Message;
  }

  /// Returns the failure's numeric code (0 when untagged or success).
  int code() const { return Code; }

private:
  std::optional<std::string> Message;
  int Code = 0;
};

/// Creates a failure `Error` from a message.
inline Error makeError(std::string Message) {
  return Error::failure(std::move(Message));
}

/// Creates a code-tagged failure `Error`.
inline Error makeError(int Code, std::string Message) {
  return Error::failure(Code, std::move(Message));
}

/// Either a `T` or an `Error`. Mirrors `llvm::Expected`.
///
/// Converts to `true` on success; the value is reached via `*`/`->` and the
/// error via `takeError()`.
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Storage(std::move(Value)) {}

  /// Constructs a failure. \p E must hold an error.
  Expected(Error E) : Storage(std::move(E)) {
    assert(std::get<Error>(Storage) && "Expected constructed from success");
  }

  /// Returns true when a value is present.
  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  /// Accesses the contained value. Must only be called on success.
  T &operator*() {
    assert(*this && "dereferencing an errored Expected");
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(*this && "dereferencing an errored Expected");
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Moves the contained error out. Returns success if a value is present.
  Error takeError() {
    if (*this)
      return Error::success();
    return std::move(std::get<Error>(Storage));
  }

  /// Returns the error message without consuming the error.
  const std::string &errorMessage() const {
    assert(!*this && "errorMessage() on a success Expected");
    return std::get<Error>(Storage).message();
  }

  /// Returns the error's numeric code without consuming the error (0 when
  /// untagged).
  int errorCode() const {
    assert(!*this && "errorCode() on a success Expected");
    return std::get<Error>(Storage).code();
  }

  /// Moves the value out. Must only be called on success.
  T takeValue() {
    assert(*this && "takeValue() on an errored Expected");
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Error> Storage;
};

} // namespace elide

#define ELIDE_CONCAT_IMPL(A, B) A##B
#define ELIDE_CONCAT(A, B) ELIDE_CONCAT_IMPL(A, B)
#define ELIDE_TRY_IMPL(Decl, Expr, Tmp)                                        \
  auto Tmp = (Expr);                                                           \
  if (!Tmp)                                                                    \
    return Tmp.takeError();                                                    \
  Decl = Tmp.takeValue()

/// Propagates the error from an `Expected` expression, binding the value on
/// success: `ELIDE_TRY(auto V, mayFail());`
#define ELIDE_TRY(Decl, Expr)                                                  \
  ELIDE_TRY_IMPL(Decl, Expr, ELIDE_CONCAT(ElideTryTmp, __LINE__))

#endif // SGXELIDE_SUPPORT_ERROR_H
