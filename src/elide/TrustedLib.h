//===- elide/TrustedLib.h - The in-enclave SgxElide runtime ---------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trusted half of SgxElide: the native "SDK library" functions
/// (crypto, channel, sealing, randomness) registered as tcalls, plus the
/// Elc runtime sources -- containing `elide_restore`, the single ecall the
/// paper's API exposes -- that are linked into every protected enclave and
/// into the dummy enclave from which the whitelist derives.
///
/// The restoration copy loop itself is Elc code executing inside the
/// enclave: the self-modification (stores into the text section) really
/// happens through the permission-checked EPC, not behind the model's
/// back.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_ELIDE_TRUSTEDLIB_H
#define SGXELIDE_ELIDE_TRUSTEDLIB_H

#include "elc/CodeGen.h"
#include "elc/Compiler.h"
#include "elide/Bridge.h"
#include "sgx/Enclave.h"

namespace elide {

/// Maximum secret-data size the runtime's restore buffer can hold.
constexpr uint64_t ElideRestoreBufferSize = 128 * 1024;

/// The in-enclave SgxElide runtime.
class ElideTrustedLib {
public:
  /// Installs all trusted library functions into \p E. \p QeTarget is the
  /// quoting enclave's TARGETINFO (provided by the platform, as aesm
  /// does). Call once per enclave, after loading.
  static void install(sgx::Enclave &E, const sgx::TargetInfo &QeTarget);

  /// The extern-name-to-index registry handed to the Elc compiler.
  static elc::CallRegistry callRegistry();

  /// The Elc sources of the runtime: the restorer (`elide_rt.elc`) and
  /// the SDK utility library (`elide_sdk.elc`). Linked into every
  /// application enclave; alone they form the dummy enclave.
  static std::vector<elc::SourceFile> runtimeSources();
};

} // namespace elide

#endif // SGXELIDE_ELIDE_TRUSTEDLIB_H
