//===- tests/framework/TestNet.h - Parallel-safe networking helpers --------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers that keep socket tests deterministic under `ctest -j`:
/// hard-coded port numbers race with whatever else the machine (or a
/// parallel test) is doing, so every "unreachable port" in a test must be
/// a port this process *owns*.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_TESTS_FRAMEWORK_TESTNET_H
#define SGXELIDE_TESTS_FRAMEWORK_TESTNET_H

#include <arpa/inet.h>
#include <cstdint>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace elide {
namespace testing {

/// A loopback port that deterministically refuses connections: the
/// kernel assigned it to us via bind(2), and without a listen(2) every
/// connect gets ECONNREFUSED. Holding the socket keeps any parallel test
/// from binding the same port for the lifetime of this object.
class ClosedPort {
public:
  ClosedPort() {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return;
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = 0; // Kernel-assigned: never collides with a listener.
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
      ::close(Fd);
      Fd = -1;
      return;
    }
    socklen_t Len = sizeof(Addr);
    if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
      BoundPort = ntohs(Addr.sin_port);
  }
  ~ClosedPort() {
    if (Fd >= 0)
      ::close(Fd);
  }
  ClosedPort(const ClosedPort &) = delete;
  ClosedPort &operator=(const ClosedPort &) = delete;

  /// False if the environment could not even bind a loopback socket.
  bool ok() const { return Fd >= 0 && BoundPort != 0; }
  uint16_t port() const { return BoundPort; }

private:
  int Fd = -1;
  uint16_t BoundPort = 0;
};

/// Tries to re-bind \p Port on loopback (without listening). Returns the
/// owned fd, or -1 if the port is taken. Used by shutdown tests: after a
/// server stops, re-binding its port parks it so the "connections are now
/// refused" assertion cannot race a parallel test adopting the port.
inline int tryBindPort(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

} // namespace testing
} // namespace elide

#endif // SGXELIDE_TESTS_FRAMEWORK_TESTNET_H
