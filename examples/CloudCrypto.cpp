//===- examples/CloudCrypto.cpp - Proprietary crypto on an untrusted cloud ------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's cloud scenario: a company runs its proprietary cipher
/// (here: the AES port standing in for a trade-secret algorithm) on a
/// cloud machine it does not trust. The developer keeps the secrets on
/// their own authentication server, reached over real TCP; the cloud
/// machine's enclave attests, restores, runs jobs -- and seals the secrets
/// so subsequent "instance restarts" work even if the developer's server
/// is briefly unreachable.
///
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "elide/HostRuntime.h"
#include "elide/Pipeline.h"
#include "server/AuthServer.h"
#include "server/Transport.h"
#include "sgx/EnclaveLoader.h"
#include "support/File.h"

#include <cstdio>

using namespace elide;

int main() {
  std::printf("== Cloud crypto example: trade-secret cipher on an untrusted "
              "machine ==\n\n");

  const apps::AppSpec &App = apps::appByName("AES");

  Drbg Rng(0xc10d);
  Ed25519Seed Seed{};
  Rng.fill(MutableBytesView(Seed.data(), 32));
  Ed25519KeyPair Vendor = ed25519KeyPairFromSeed(Seed);

  BuildOptions Options; // Remote data: nothing secret ships at all.
  Expected<BuildArtifacts> Artifacts =
      buildProtectedEnclave(App.TrustedSources, Vendor, Options);
  if (!Artifacts) {
    std::fprintf(stderr, "build failed: %s\n",
                 Artifacts.errorMessage().c_str());
    return 1;
  }
  std::printf("[dev] built + sanitized the cipher enclave (%zu bytes of "
              "code redacted)\n",
              Artifacts->Report.SanitizedBytes);

  // The developer's server, on "their" side of a real TCP connection.
  sgx::AttestationAuthority Authority(11);
  AuthServerConfig Config;
  Config.AuthorityKey = Authority.publicKey();
  Config.ExpectedMrEnclave = Artifacts->SanitizedSig.MrEnclave;
  Config.ExpectedMrSigner = Artifacts->SanitizedSig.mrSigner();
  Config.Meta = Artifacts->Meta;
  Config.SecretData = Artifacts->SecretData;
  AuthServer Server(std::move(Config));
  Expected<std::unique_ptr<TcpServer>> Tcp = TcpServer::start(Server);
  if (!Tcp) {
    std::fprintf(stderr, "server start failed: %s\n",
                 Tcp.errorMessage().c_str());
    return 1;
  }
  std::printf("[dev] authentication server listening on 127.0.0.1:%u\n\n",
              (*Tcp)->port());

  // The cloud machine.
  sgx::SgxDevice CloudMachine(0xc1001);
  sgx::QuotingEnclave Qe(CloudMachine, Authority);
  TcpClientTransport Link("127.0.0.1", (*Tcp)->port());

  ElideHost Host(&Link, &Qe);
  std::string SealedPath = "/tmp/sgxelide_cloud_example.sealed";
  removeFile(SealedPath);
  Host.setSealedPath(SealedPath);

  for (int Launch = 1; Launch <= 2; ++Launch) {
    std::printf("[cloud] instance launch #%d\n", Launch);
    Expected<std::unique_ptr<sgx::Enclave>> E = sgx::loadEnclave(
        CloudMachine, Artifacts->SanitizedElf, Artifacts->SanitizedSig,
        Options.Layout);
    if (!E) {
      std::fprintf(stderr, "load failed: %s\n", E.errorMessage().c_str());
      return 1;
    }
    Host.attach(**E);
    size_t HandshakesBefore = Server.stats().HandshakesCompleted;
    Expected<uint64_t> Status = Host.restore(**E);
    if (!Status || *Status != 0) {
      std::fprintf(stderr, "restore failed\n");
      return 1;
    }
    size_t NewHandshakes =
        Server.stats().HandshakesCompleted - HandshakesBefore;
    std::printf("[cloud] restored (%s)\n",
                NewHandshakes ? "attested over TCP to the dev server"
                              : "from sealed storage, no network");

    // Run a customer job: encrypt a record.
    Bytes In;
    In.push_back(0); // encrypt
    Bytes Key = Drbg(Launch).bytes(16);
    appendBytes(In, Key);
    Bytes Record = bytesOfString("customer-record-0001/amount=12345678");
    Record.resize(48, 0);
    appendBytes(In, Record);
    Expected<sgx::EcallResult> R = (*E)->ecall("aes_run", In, Record.size());
    if (!R || !R->ok() || R->status() != 0) {
      std::fprintf(stderr, "cipher job failed\n");
      return 1;
    }
    std::printf("[cloud] job done; ciphertext[0..8] = ");
    for (int I = 0; I < 8; ++I)
      std::printf("%02x", R->Output[I]);
    std::printf("\n\n");
  }

  (*Tcp)->stop();
  removeFile(SealedPath);
  std::printf("cloud crypto example OK\n");
  return 0;
}
