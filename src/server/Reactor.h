//===- server/Reactor.h - Event-driven frame server -----------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event-driven transport core under `TcpServer`: one reactor thread
/// multiplexes every connection over an `EventLoop` (epoll, with a poll
/// fallback), while a fixed worker pool runs the frame handler -- the CPU
/// work of quote verification and GCM -- off the IO path. Compared to the
/// former thread-per-connection queue, concurrency is now bounded by
/// memory per connection rather than by threads, so thousands of idle or
/// slow clients cost a few kilobytes each instead of a stack each.
///
/// Per-connection state machine:
///
///   ReadFrame --(frame complete)--> Dispatched --(handler done)-->
///   WriteResponse --(flushed)--> ReadFrame | DrainClose --> closed
///
/// Reads and writes are non-blocking with per-phase deadlines: a slow-
/// loris client dribbling a frame hits the read deadline (counted only
/// when it left a frame dangling -- idle keep-alive closes are quiet),
/// and a stalled reader that never drains a large response hits the
/// write deadline (write backpressure is the kernel socket buffer; the
/// reactor parks the connection on EvWrite and never buffers more than
/// the one in-flight response).
///
/// `stop()` drains rather than drops: the listener closes immediately,
/// accepted-but-unserved connections get an explicit OVERLOADED frame
/// (with a retry-after hint) instead of a silent RST, in-flight
/// exchanges finish bounded by their IO deadlines, and only then do the
/// threads join.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_SERVER_REACTOR_H
#define SGXELIDE_SERVER_REACTOR_H

#include "server/EventLoop.h"
#include "support/Bytes.h"
#include "support/Error.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace elide {

/// The application layer served by a reactor: one request frame in, one
/// response frame out. Must be thread-safe (the worker pool calls it
/// concurrently). `AuthServer::handle` is the production handler; tests
/// plug in lambdas.
using FrameHandler = std::function<Bytes(BytesView)>;

/// Transport-side context for one dispatched frame: facts the handler
/// cannot measure itself but needs for overload decisions.
struct FrameContext {
  /// Milliseconds the completed frame sat in the worker queue before a
  /// worker picked it up. Queue delay is the canonical congestion signal:
  /// it rises before throughput falls, which is what lets a brownout
  /// controller act before the collapse rather than after.
  double QueueDelayMs = 0.0;
};

/// Context-aware variant of `FrameHandler`; same thread-safety contract.
using ContextFrameHandler =
    std::function<Bytes(BytesView, const FrameContext &)>;

/// Tuning knobs for the reactor transport.
struct ReactorConfig {
  /// Worker threads running the frame handler (the reactor thread itself
  /// never runs application code).
  size_t WorkerThreads = 8;
  /// Deadline for reading one full frame off a connection. Idle
  /// connections that never start a frame are closed quietly when it
  /// lapses; connections mid-frame count a read timeout.
  int ReadTimeoutMs = 5000;
  /// Deadline for flushing one full response to a connection.
  int WriteTimeoutMs = 5000;
  /// listen(2) backlog.
  int Backlog = 64;
  /// Largest frame the server will accept.
  uint32_t MaxFrameBytes = 64u << 20;
  /// Connection cap: accepted connections beyond this many concurrently
  /// served are shed with an OVERLOADED frame. 0 = no cap.
  size_t MaxConnections = 0;
  /// Retry-after hint carried by cap-shed responses.
  uint32_t OverloadRetryAfterMs = 100;
  /// Retry-after hint carried by the OVERLOADED frames sent to accepted-
  /// but-unserved connections during a stop() drain.
  uint32_t DrainRetryAfterMs = 50;
  /// Selects the poll(2) backend even where epoll is available (the test
  /// suite pins the fallback with this so it never rots).
  bool ForcePollBackend = false;
};

/// Usage counters (tests and benches read these).
struct ReactorStats {
  size_t ConnectionsAccepted = 0;
  size_t ConnectionsShed = 0;
  size_t FramesServed = 0;
  size_t ReadTimeouts = 0;
  size_t WriteTimeouts = 0;
  /// Accepted-but-unserved connections notified with OVERLOADED during a
  /// stop() drain (the regression guard for silent drops).
  size_t DrainNotified = 0;
  /// Peak concurrently-open connections.
  size_t MaxConcurrentConnections = 0;
  /// Cross-thread wakeups the event loop consumed (worker completions,
  /// stop requests).
  size_t Wakeups = 0;
  /// Whether the epoll backend was active (false = poll fallback).
  bool UsedEpoll = false;
};

/// Serves length-prefixed frames over TCP on 127.0.0.1 with an ephemeral
/// port. All public methods are thread-safe.
class ReactorServer {
public:
  static Expected<std::unique_ptr<ReactorServer>>
  start(ContextFrameHandler Handler,
        const ReactorConfig &Config = ReactorConfig());
  /// Convenience overload for handlers that ignore the frame context.
  static Expected<std::unique_ptr<ReactorServer>>
  start(FrameHandler Handler, const ReactorConfig &Config = ReactorConfig());
  ~ReactorServer();

  ReactorServer(const ReactorServer &) = delete;
  ReactorServer &operator=(const ReactorServer &) = delete;

  /// The bound port.
  uint16_t port() const { return Port; }

  /// Stops accepting, drains in-flight connections (see the file
  /// comment), joins all threads. Idempotent.
  void stop();

  /// Snapshot of the usage counters.
  ReactorStats stats() const;

private:
  struct Conn;
  struct Job {
    Conn *C;
    Bytes Request;
    /// When the frame entered the worker queue (queue-delay measurement).
    std::chrono::steady_clock::time_point EnqueuedAt;
  };
  struct Completion {
    Conn *C;
    Bytes Response;
  };

  ReactorServer() = default;

  void loopThread();
  void workerThread();

  // All of the below run on the reactor thread only.
  void acceptReady();
  void readReady(Conn &C);
  void writeReady(Conn &C);
  void drainReady(Conn &C);
  void finishWrite(Conn &C);
  void dispatch(Conn &C);
  void armWrite(Conn &C, BytesView Frame);
  void processCompletions();
  void handleEvent(const LoopEvent &Ev);
  void beginDrain();
  void requestClose(Conn &C);
  void flushCloses();
  void sweepDeadlines();
  int nextWaitTimeoutMs() const;

  ContextFrameHandler Handler;
  ReactorConfig Config;
  int ListenFd = -1;
  uint16_t Port = 0;
  std::unique_ptr<EventLoop> Loop;
  std::thread Reactor;
  std::vector<std::thread> Workers;

  std::atomic<bool> StopRequested{false};
  std::mutex StopMutex; ///< Serializes concurrent stop() calls.
  bool Draining = false; ///< Reactor thread only.

  /// Open connections by fd and the batch-deferred close list (reactor
  /// thread only; closes are deferred to the end of an event batch so a
  /// token freed by one event can never be dereferenced by the next).
  std::unordered_map<int, std::unique_ptr<Conn>> Conns;
  std::vector<Conn *> ToClose;
  size_t ServingConns = 0; ///< Open conns that count against the cap.

  std::mutex JobMutex;
  std::condition_variable JobCv;
  std::deque<Job> Jobs; ///< Guarded by JobMutex.
  bool WorkersStop = false; ///< Guarded by JobMutex.

  std::mutex DoneMutex;
  std::deque<Completion> Done; ///< Guarded by DoneMutex.

  std::atomic<size_t> ConnectionsAccepted{0};
  std::atomic<size_t> ConnectionsShed{0};
  std::atomic<size_t> FramesServed{0};
  std::atomic<size_t> ReadTimeouts{0};
  std::atomic<size_t> WriteTimeouts{0};
  std::atomic<size_t> DrainNotified{0};
  std::atomic<size_t> PeakConns{0};
};

} // namespace elide

#endif // SGXELIDE_SERVER_REACTOR_H
