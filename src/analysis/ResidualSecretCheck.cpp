//===- analysis/ResidualSecretCheck.cpp - AUD1xx residual-secret scan ------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Residual-secret scan: the sanitized image must not contain the elided
/// bytes anywhere. Four probes:
///
///   AUD101  every explicitly elided text range is all-zero;
///   AUD102  no 16-byte window of the original secret plaintext occurs
///           anywhere outside the text section (catches copies that
///           leaked into .rodata, .data, or the metadata container);
///   AUD103  no data section decodes as a plausible SVM instruction
///           stream (a literal pool of code would escape AUD102 when the
///           plaintext is unavailable);
///   AUD104  the serialized secret metadata -- and, for Local storage,
///           the raw AES key -- is not embedded in the shipped file.
///
/// The AUD102 window parameters (16-byte window, 8-byte stride, >= 4
/// distinct byte values) are tuned so whitelisted code that legitimately
/// survives in .text never matches: only non-text file ranges are
/// searched, and low-entropy windows (zero runs, single-byte pads) are
/// skipped to keep padding from matching padding.
///
//===----------------------------------------------------------------------===//

#include "analysis/Audit.h"
#include "vm/Isa.h"

#include <algorithm>

namespace elide {
namespace analysis {

namespace {

/// Max findings reported per code before collapsing into a summary line;
/// a leaked page would otherwise produce hundreds of identical lines.
constexpr size_t MaxPerCode = 8;

/// Returns the name of the PROGBITS section containing file offset
/// \p Off, or "" when it falls outside every section (headers, padding).
std::string sectionAtFileOffset(const ElfImage &Image, uint64_t Off) {
  for (const ElfSection &S : Image.sections()) {
    if (S.Type == SHT_NOBITS || S.Type == SHT_NULL)
      continue;
    if (Off >= S.Offset && Off < S.Offset + S.Size)
      return S.Name;
  }
  return "";
}

bool windowIsInteresting(const uint8_t *W, size_t Len) {
  bool Seen[256] = {false};
  size_t Distinct = 0;
  for (size_t I = 0; I < Len; ++I)
    if (!Seen[W[I]]) {
      Seen[W[I]] = true;
      ++Distinct;
    }
  return Distinct >= 4;
}

/// A slot "looks like" an SVM instruction when the opcode is defined and
/// non-illegal and every register field is architecturally valid. ASCII
/// text fails this immediately: printable bytes in the register
/// positions exceed SvmRegCount-1 (31).
bool slotLooksLikeCode(const uint8_t *Slot) {
  if (Slot[0] == 0 || !isValidOpcode(Slot[0]))
    return false;
  return Slot[1] < SvmRegCount && Slot[2] < SvmRegCount &&
         Slot[3] < SvmRegCount;
}

} // namespace

void checkResidualSecrets(const AuditInput &Input, const AuditOptions &,
                          DiagnosticEngine &Engine) {
  const ElfImage &Image = *Input.Image;
  const Bytes &File = Image.fileBytes();
  const ElfSection *Text = Image.sectionByName(Input.TextSection);

  // --- AUD101: explicitly elided ranges must be zero. ---
  bool Inferred = false;
  std::vector<ElidedRegion> Regions = effectiveElidedRegions(Input, &Inferred);
  if (Text && !Inferred) {
    size_t Reported = 0;
    for (const ElidedRegion &R : Regions) {
      Expected<uint64_t> Off =
          Image.fileOffsetOf(*Text, Text->Addr + R.Offset, R.Length);
      if (!Off)
        continue; // Out-of-section regions are AUD304's finding.
      const uint8_t *P = File.data() + *Off;
      for (uint64_t I = 0; I < R.Length; ++I) {
        if (P[I] == 0)
          continue;
        if (++Reported <= MaxPerCode) {
          uint64_t Run = 1;
          while (I + Run < R.Length && P[I + Run] != 0)
            ++Run;
          Engine.report(AudResidualSecretBytes, Severity::Error,
                        "elided range" +
                            (R.Name.empty() ? std::string()
                                            : " of '" + R.Name + "'") +
                            " contains " + std::to_string(Run) +
                            " nonzero byte(s); the secret body was not "
                            "redacted",
                        Input.TextSection, R.Offset + I, Run, R.Name);
        }
        break; // One finding per region is enough.
      }
    }
    if (Reported > MaxPerCode)
      Engine.report(AudResidualSecretBytes, Severity::Note,
                    std::to_string(Reported - MaxPerCode) +
                        " additional elided ranges with residual bytes "
                        "omitted");
  }

  // --- AUD102: secret plaintext windows outside .text. ---
  if (!Input.SecretPlaintext.empty() && Input.SecretPlaintext.size() >= 16) {
    constexpr size_t Window = 16;
    constexpr size_t Stride = 8;
    uint64_t TextBegin = Text ? Text->Offset : 0;
    uint64_t TextEnd = Text ? Text->Offset + Text->Size : 0;
    size_t Reported = 0;
    std::set<uint64_t> SeenOffsets; // Overlapping windows hit once.
    for (size_t W = 0; W + Window <= Input.SecretPlaintext.size();
         W += Stride) {
      const uint8_t *Needle = Input.SecretPlaintext.data() + W;
      if (!windowIsInteresting(Needle, Window))
        continue;
      const uint8_t *Cursor = File.data();
      const uint8_t *End = File.data() + File.size();
      while (true) {
        const uint8_t *Hit = std::search(Cursor, End, Needle, Needle + Window);
        if (Hit == End)
          break;
        uint64_t Off = (uint64_t)(Hit - File.data());
        Cursor = Hit + 1;
        if (Text && Off >= TextBegin && Off + Window <= TextEnd)
          continue; // Whitelisted code legitimately survives in .text.
        // Collapse hits within one window-width of an already-reported
        // offset (overlapping strides of the same leaked copy).
        auto Near = SeenOffsets.lower_bound(Off >= Window ? Off - Window : 0);
        if (Near != SeenOffsets.end() && *Near <= Off + Window)
          continue;
        SeenOffsets.insert(Off);
        if (++Reported <= MaxPerCode) {
          std::string Sec = sectionAtFileOffset(Image, Off);
          uint64_t SecOff = Off;
          if (const ElfSection *S =
                  Sec.empty() ? nullptr : Image.sectionByName(Sec))
            SecOff = Off - S->Offset;
          Engine.report(AudSecretBytesLeaked, Severity::Error,
                        "16-byte window of the secret plaintext (offset " +
                            std::to_string(W) +
                            ") recurs in the shipped image outside .text",
                        Sec, SecOff, Window);
        }
      }
    }
    if (Reported > MaxPerCode)
      Engine.report(AudSecretBytesLeaked, Severity::Note,
                    std::to_string(Reported - MaxPerCode) +
                        " additional plaintext-window hits omitted");
  }

  // --- AUD103: data sections that decode as plausible SVM code. ---
  constexpr size_t MinCodeRun = 8; // Consecutive plausible 8-byte slots.
  for (const ElfSection &S : Image.sections()) {
    if (S.Type != SHT_PROGBITS || (S.Flags & SHF_EXECINSTR) ||
        !(S.Flags & SHF_ALLOC))
      continue;
    if (S.Name == Input.TextSection)
      continue;
    Bytes Data = Image.sectionContents(S);
    size_t Run = 0;
    uint64_t RunStart = 0;
    for (size_t I = 0; I + 8 <= Data.size(); I += 8) {
      if (slotLooksLikeCode(Data.data() + I)) {
        if (Run == 0)
          RunStart = I;
        ++Run;
        continue;
      }
      if (Run >= MinCodeRun)
        Engine.report(AudCodeLikeData, Severity::Warning,
                      std::to_string(Run) +
                          " consecutive slots decode as SVM instructions; "
                          "possible code copy in a data section",
                      S.Name, RunStart, Run * 8);
      Run = 0;
    }
    if (Run >= MinCodeRun)
      Engine.report(AudCodeLikeData, Severity::Warning,
                    std::to_string(Run) +
                        " consecutive slots decode as SVM instructions; "
                        "possible code copy in a data section",
                    S.Name, RunStart, Run * 8);
  }

  // --- AUD104: secret metadata embedded in the shipped image. ---
  if (Input.Meta) {
    auto findNeedle = [&](BytesView Needle, const char *What) {
      if (Needle.size() < 8 ||
          !windowIsInteresting(Needle.data(), Needle.size()))
        return;
      auto Hit = std::search(File.begin(), File.end(), Needle.begin(),
                             Needle.end());
      if (Hit == File.end())
        return;
      uint64_t Off = (uint64_t)(Hit - File.begin());
      std::string Sec = sectionAtFileOffset(Image, Off);
      const ElfSection *S = Sec.empty() ? nullptr : Image.sectionByName(Sec);
      Engine.report(AudMetaInImage, Severity::Error,
                    std::string(What) +
                        " is embedded in the shipped image; secret "
                        "metadata must travel out of band",
                    Sec, S ? Off - S->Offset : Off, Needle.size());
    };
    findNeedle(Input.Meta->Serialized, "the serialized secret metadata");
    if (Input.Meta->Encrypted)
      findNeedle(Input.Meta->KeyBytes, "the secret-container AES key");
  }
}

} // namespace analysis
} // namespace elide
