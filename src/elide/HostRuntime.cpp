//===- elide/HostRuntime.cpp - Untrusted host side of SgxElide -------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "elide/HostRuntime.h"

#include "elide/TrustedLib.h"
#include "support/File.h"

using namespace elide;

void ElideHost::attach(sgx::Enclave &E) {
  ElideTrustedLib::install(E, Qe ? Qe->targetInfo() : sgx::TargetInfo{});
  E.setOcallHandler([this](uint32_t Index, BytesView Request) {
    return handleOcall(Index, Request);
  });
}

Expected<uint64_t> ElideHost::restore(sgx::Enclave &E) {
  ELIDE_TRY(sgx::EcallResult R, E.ecall("elide_restore", {}, 0));
  if (!R.ok())
    return makeError(std::string("elide_restore trapped: ") +
                     trapKindName(R.Exec.Kind) + ": " + R.Exec.Message);
  return R.status();
}

Expected<Bytes> ElideHost::handleOcall(uint32_t Index, BytesView Request) {
  switch (Index) {
  case OcallServerRequest:
    if (!Server)
      return makeError("no connection to the authentication server "
                       "(denial of service: the enclave cannot restore)");
    return Server->roundTrip(Request);

  case OcallReadFile:
    // The shipped enclave.secret.data (ciphertext). An empty response
    // tells the enclave the file is missing.
    return SecretDataFile;

  case OcallReadSealed: {
    if (!SealedPath.empty() && fileExists(SealedPath))
      return readFileBytes(SealedPath);
    return SealedBlob;
  }

  case OcallWriteSealed: {
    SealedBlob = toBytes(Request);
    if (!SealedPath.empty())
      if (Error E = writeFileBytes(SealedPath, Request))
        return E;
    return Bytes();
  }

  case OcallGetQuote: {
    if (!Qe)
      return makeError("no quoting enclave on this platform");
    ELIDE_TRY(sgx::Report R, deserializeReport(Request));
    ELIDE_TRY(sgx::Quote Q, Qe->quoteReport(R));
    return Q.serialize();
  }

  case OcallPrint:
    DebugOutput += stringOfBytes(Request);
    return Bytes();

  default:
    if (Index >= OcallAppBase && AppHandler)
      return AppHandler(Index, Request);
    return makeError("unhandled ocall index " + std::to_string(Index));
  }
}
