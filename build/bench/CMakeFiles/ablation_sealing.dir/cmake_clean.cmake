file(REMOVE_RECURSE
  "CMakeFiles/ablation_sealing.dir/AblationSealing.cpp.o"
  "CMakeFiles/ablation_sealing.dir/AblationSealing.cpp.o.d"
  "ablation_sealing"
  "ablation_sealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
