//===- tests/framework/FuzzHarness.cpp - Replay and sweep runners -----------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tests/framework/FuzzHarness.h"

#include "tests/framework/Mutator.h"

using namespace elide;
using namespace elide::fuzz;

Expected<size_t> fuzz::replayCorpus(const std::string &Target, TargetFn Fn) {
  ELIDE_TRY(std::vector<CorpusEntry> Entries, loadCorpus(Target));
  for (const CorpusEntry &E : Entries)
    Fn(E.Data);
  return Entries.size();
}

void fuzz::generativeSweep(TargetFn Fn, GeneratorFn Gen, uint64_t Seed,
                           int Iterations) {
  for (int K = 0; K < Iterations; ++K) {
    // Mix (Seed, K) into an independent stream per iteration; the odd
    // multiplier keeps adjacent iterations decorrelated.
    Drbg Rng(Seed * 0x9e3779b97f4a7c15ull + uint64_t(K) * 0x100000001b3ull);
    Bytes Input = Gen(Rng);
    Fn(Input);
    Fn(mutate(Input, Rng));
  }
}
