//===- elf/ElfTypes.h - ELF64 structures and constants ---------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The subset of the ELF64 specification used by enclave images: file
/// header, program headers, section headers, and symbols. Enclave shared
/// objects produced by the Elc compiler are genuine ELF64 files so the
/// sanitizer manipulates them exactly as the paper describes (parse section
/// headers, enumerate symbols, zero function bodies, OR PF_W into the text
/// segment's p_flags).
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_ELF_ELFTYPES_H
#define SGXELIDE_ELF_ELFTYPES_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace elide {

// e_ident layout.
constexpr uint8_t ElfMag0 = 0x7f;
constexpr uint8_t ElfMag1 = 'E';
constexpr uint8_t ElfMag2 = 'L';
constexpr uint8_t ElfMag3 = 'F';
constexpr uint8_t ElfClass64 = 2;
constexpr uint8_t ElfData2Lsb = 1; // little endian
constexpr uint8_t ElfVersionCurrent = 1;

// e_type values.
constexpr uint16_t ET_DYN = 3;

/// Machine number for SVM enclave bytecode ('SG' little-endian); chosen
/// from the unallocated range so tools cannot confuse these images with
/// native objects.
constexpr uint16_t EM_SVM = 0x5347;

// Program header types and flags.
constexpr uint32_t PT_NULL = 0;
constexpr uint32_t PT_LOAD = 1;
constexpr uint32_t PF_X = 1;
constexpr uint32_t PF_W = 2;
constexpr uint32_t PF_R = 4;

// Section header types.
constexpr uint32_t SHT_NULL = 0;
constexpr uint32_t SHT_PROGBITS = 1;
constexpr uint32_t SHT_SYMTAB = 2;
constexpr uint32_t SHT_STRTAB = 3;
constexpr uint32_t SHT_NOBITS = 8;

// Section flags.
constexpr uint64_t SHF_WRITE = 1;
constexpr uint64_t SHF_ALLOC = 2;
constexpr uint64_t SHF_EXECINSTR = 4;

// Symbol binding/type helpers.
constexpr uint8_t STB_GLOBAL = 1;
constexpr uint8_t STT_OBJECT = 1;
constexpr uint8_t STT_FUNC = 2;

inline uint8_t elfSymInfo(uint8_t Bind, uint8_t Type) {
  return static_cast<uint8_t>(Bind << 4 | (Type & 0xf));
}
inline uint8_t elfSymType(uint8_t Info) { return Info & 0xf; }
inline uint8_t elfSymBind(uint8_t Info) { return Info >> 4; }

/// Structure sizes (we serialize manually; these are the on-disk sizes).
constexpr size_t Elf64EhdrSize = 64;
constexpr size_t Elf64PhdrSize = 56;
constexpr size_t Elf64ShdrSize = 64;
constexpr size_t Elf64SymSize = 24;

/// Parsed ELF64 file header.
struct ElfHeader {
  uint16_t Type = ET_DYN;
  uint16_t Machine = EM_SVM;
  uint64_t Entry = 0;
  uint64_t PhOff = 0;
  uint64_t ShOff = 0;
  uint32_t Flags = 0;
  uint16_t PhNum = 0;
  uint16_t ShNum = 0;
  uint16_t ShStrNdx = 0;
};

/// Parsed program header (one loadable segment).
struct ElfSegment {
  uint32_t Type = PT_LOAD;
  uint32_t Flags = PF_R;
  uint64_t Offset = 0;
  uint64_t VAddr = 0;
  uint64_t PAddr = 0;
  uint64_t FileSize = 0;
  uint64_t MemSize = 0;
  uint64_t Align = 0x1000;
};

/// Parsed section header.
struct ElfSection {
  std::string Name;
  uint32_t NameOffset = 0;
  uint32_t Type = SHT_NULL;
  uint64_t Flags = 0;
  uint64_t Addr = 0;
  uint64_t Offset = 0;
  uint64_t Size = 0;
  uint32_t Link = 0;
  uint32_t Info = 0;
  uint64_t AddrAlign = 1;
  uint64_t EntSize = 0;
};

/// Parsed symbol.
struct ElfSymbol {
  std::string Name;
  uint64_t Value = 0; // virtual address
  uint64_t Size = 0;
  uint8_t Info = 0;
  uint8_t Other = 0;
  uint16_t SectionIndex = 0;

  bool isFunction() const { return elfSymType(Info) == STT_FUNC; }
  bool isObject() const { return elfSymType(Info) == STT_OBJECT; }
};

} // namespace elide

#endif // SGXELIDE_ELF_ELFTYPES_H
