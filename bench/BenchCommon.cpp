//===- bench/BenchCommon.cpp - Shared benchmark scaffolding ------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include <cstdio>
#include <cstdlib>
#include <map>

using namespace elide;
using namespace elide::bench;

BenchScenario::Launch BenchScenario::launchSanitized(ElideHost *ReuseHost) {
  Launch L;
  Expected<std::unique_ptr<sgx::Enclave>> E =
      sgx::loadEnclave(*Device, Artifacts.SanitizedElf, Artifacts.SanitizedSig,
                       Options.Layout);
  if (!E) {
    std::fprintf(stderr, "bench: load failed: %s\n", E.errorMessage().c_str());
    std::abort();
  }
  L.E = E.takeValue();
  if (ReuseHost) {
    ReuseHost->attach(*L.E);
    return L;
  }
  L.Host = std::make_unique<ElideHost>(Link.get(), Qe.get());
  if (Options.Storage == SecretStorage::Local)
    L.Host->setSecretDataFile(Artifacts.SecretData);
  L.Host->attach(*L.E);
  return L;
}

BenchScenario::Launch BenchScenario::launchPlain() {
  Launch L;
  Expected<std::unique_ptr<sgx::Enclave>> E = sgx::loadEnclave(
      *Device, Artifacts.PlainElf, Artifacts.PlainSig, Options.Layout);
  if (!E) {
    std::fprintf(stderr, "bench: load failed: %s\n", E.errorMessage().c_str());
    std::abort();
  }
  L.E = E.takeValue();
  L.Host = std::make_unique<ElideHost>(Link.get(), Qe.get());
  L.Host->attach(*L.E);
  return L;
}

BenchScenario &bench::scenarioFor(const std::string &AppName,
                                  SecretStorage Storage) {
  using Key = std::pair<std::string, int>;
  static std::map<Key, std::unique_ptr<BenchScenario>> Cache;
  Key K{AppName, static_cast<int>(Storage)};
  auto It = Cache.find(K);
  if (It != Cache.end())
    return *It->second;

  auto S = std::make_unique<BenchScenario>();
  S->App = &apps::appByName(AppName);
  S->Options.Storage = Storage;

  Drbg Rng(0xbe7c);
  Ed25519Seed Seed{};
  Rng.fill(MutableBytesView(Seed.data(), 32));
  Ed25519KeyPair Vendor = ed25519KeyPairFromSeed(Seed);

  Expected<BuildArtifacts> Artifacts =
      buildProtectedEnclave(S->App->TrustedSources, Vendor, S->Options);
  if (!Artifacts) {
    std::fprintf(stderr, "bench: pipeline failed for %s: %s\n",
                 AppName.c_str(), Artifacts.errorMessage().c_str());
    std::abort();
  }
  S->Artifacts = Artifacts.takeValue();

  S->Device = std::make_unique<sgx::SgxDevice>(9090);
  S->Authority = std::make_unique<sgx::AttestationAuthority>(9091);
  S->Qe = std::make_unique<sgx::QuotingEnclave>(*S->Device, *S->Authority);

  AuthServerConfig Config;
  Config.AuthorityKey = S->Authority->publicKey();
  ServerProvisioning P = provisioningFor(S->Artifacts, S->Options);
  Config.ExpectedMrEnclave = P.SanitizedMrEnclave;
  Config.ExpectedMrSigner = P.MrSigner;
  Config.Meta = S->Artifacts.Meta;
  if (Storage == SecretStorage::Remote)
    Config.SecretData = S->Artifacts.SecretData;
  S->Server = std::make_unique<AuthServer>(std::move(Config));
  S->Link = std::make_unique<LoopbackTransport>(*S->Server);

  auto &Ref = *S;
  Cache.emplace(K, std::move(S));
  return Ref;
}

void bench::printTableHeader(const std::string &Title) {
  std::printf("\n================================================================"
              "===============\n");
  std::printf("  %s\n", Title.c_str());
  std::printf("=================================================================="
              "=============\n");
}
