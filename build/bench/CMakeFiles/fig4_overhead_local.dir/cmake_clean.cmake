file(REMOVE_RECURSE
  "CMakeFiles/fig4_overhead_local.dir/Fig4OverheadLocal.cpp.o"
  "CMakeFiles/fig4_overhead_local.dir/Fig4OverheadLocal.cpp.o.d"
  "fig4_overhead_local"
  "fig4_overhead_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_overhead_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
