file(REMOVE_RECURSE
  "CMakeFiles/ablation_sgx2_emodpe.dir/AblationSgx2.cpp.o"
  "CMakeFiles/ablation_sgx2_emodpe.dir/AblationSgx2.cpp.o.d"
  "ablation_sgx2_emodpe"
  "ablation_sgx2_emodpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sgx2_emodpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
