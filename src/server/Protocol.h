//===- server/Protocol.h - SgxElide client/server wire protocol ----------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol between the Runtime Restorer and the authentication
/// server. Per the paper: "The client sends a single byte request
/// representing what resource it requires (i.e., REQUEST_META ... and
/// REQUEST_DATA ...), and the server responds with the data. The client
/// and server communicate using AES GCM encryption."
///
/// Frames:
///   HELLO     : 0x01 || serialized quote            (quote's report data
///               carries the enclave's X25519 public key)
///   HELLO-OK  : 0x01 || session id[8] || server X25519 public key
///   RECORD    : 0x02 || session id[8] || iv[12] || tag[16] || ciphertext
///               (client->server; AES-128-GCM, session id bound as AAD)
///   RECORD    : 0x02 || iv[12] || tag[16] || ciphertext
///               (server->client; the client knows which session it is)
///   ERROR     : 0xee || utf-8 message
///
/// Record plaintexts: requests are the paper's single byte (REQUEST_META /
/// REQUEST_DATA); responses are the raw metadata / secret data bytes.
/// Session keys derive from X25519(client, server) via HKDF, one key per
/// direction. The session id lets one server interleave many concurrent
/// clients: it selects the per-session keys, and because it is only a
/// *selector* (the keys themselves come from the attested handshake), a
/// forged or replayed id yields nothing but a GCM failure.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_SERVER_PROTOCOL_H
#define SGXELIDE_SERVER_PROTOCOL_H

#include "crypto/AesGcm.h"
#include "crypto/Drbg.h"
#include "crypto/X25519.h"
#include "support/Bytes.h"
#include "support/Error.h"

#include <array>
#include <optional>
#include <vector>

namespace elide {

/// Frame type bytes.
constexpr uint8_t FrameHello = 0x01;
constexpr uint8_t FrameRecord = 0x02;
/// Batched handshake: one attested quote provisions many sessions for
/// enclaves sharing a measurement (DynSGX-style amortization: the quote's
/// report data binds the whole key list, so the expensive signature
/// verification runs once per batch instead of once per enclave).
constexpr uint8_t FrameHelloBatch = 0x03;
constexpr uint8_t FrameError = 0xee;
/// Load-shedding response: the server is up but refuses this exchange.
/// Unlike ERROR (a verdict about the request), OVERLOADED is a statement
/// about the server's state, so clients treat it as transient and retry
/// elsewhere / later instead of counting it as an endpoint failure.
constexpr uint8_t FrameOverloaded = 0xb5;

/// The paper's single-byte request codes.
constexpr uint8_t RequestMeta = 0x4d; // 'M'
constexpr uint8_t RequestData = 0x44; // 'D'

/// Wire size of the session id carried by HELLO-OK and client records.
constexpr size_t SessionIdSize = 8;

/// Wire size of a HELLO-OK frame: type || sid || server public key.
constexpr size_t HelloOkSize = 1 + SessionIdSize + 32;

/// Per-direction AES-128 session keys derived from the handshake.
struct SessionKeys {
  Aes128Key ClientToServer{};
  Aes128Key ServerToClient{};
};

/// Derives the session keys from an X25519 shared secret and both public
/// keys (transcript binding).
SessionKeys deriveSessionKeys(const X25519Key &Shared,
                              const X25519Key &ClientPub,
                              const X25519Key &ServerPub);

/// Encrypts \p Plaintext into a server->client RECORD frame under \p Key.
Expected<Bytes> sealRecord(const Aes128Key &Key, BytesView Plaintext,
                           Drbg &Rng);

/// Same, with a caller-supplied 12-byte IV. This is the contention-free
/// form: a concurrent server draws the IV under its (tiny) RNG lock and
/// runs the GCM pass unlocked.
Expected<Bytes> sealRecordIv(const Aes128Key &Key, BytesView Plaintext,
                             BytesView Iv);

/// Decrypts a server->client RECORD frame (including the leading type
/// byte).
Expected<Bytes> openRecord(const Aes128Key &Key, BytesView Frame);

/// Encrypts \p Plaintext into a client->server RECORD frame that names
/// \p SessionId (bound into the GCM additional authenticated data).
Expected<Bytes> sealSessionRecord(uint64_t SessionId, const Aes128Key &Key,
                                  BytesView Plaintext, Drbg &Rng);

/// Reads the session id of a client->server RECORD frame without
/// decrypting it (the server uses this to select the session keys).
Expected<uint64_t> peekSessionId(BytesView Frame);

/// Decrypts a client->server RECORD frame, verifying that the session id
/// it names was authenticated under \p Key.
Expected<Bytes> openSessionRecord(const Aes128Key &Key, BytesView Frame);

//===----------------------------------------------------------------------===//
// Batched handshake (HELLO-BATCH)
//===----------------------------------------------------------------------===//
//
// Frames:
//   HELLO-BATCH    : 0x03 || count u16 || quote-len u32 || quote ||
//                    count * client X25519 public key[32]
//   HELLO-BATCH-OK : 0x03 || count u16 ||
//                    count * (session id[8] || server X25519 public key[32])
//
// The quote's report data carries, in its first 32 bytes, the batch
// binding hash: SHA-256 over a domain tag, the count, and the client
// public keys in wire order. The attested enclave therefore vouches for
// the *whole key list* with one signature; an attacker cannot splice a
// key into someone else's batch without breaking the hash, and every
// minted session still gets independent directional keys from its own
// X25519 exchange.

/// Hard cap on sessions per batch (bounds server work per frame).
constexpr size_t BatchMaxSessions = 1024;

/// The batch binding hash committed into the quote's report data.
std::array<uint8_t, 32>
batchBindingHash(const std::vector<X25519Key> &ClientPubs);

/// Builds a HELLO-BATCH frame from a serialized quote and the key list.
Bytes helloBatchFrame(BytesView Quote,
                      const std::vector<X25519Key> &ClientPubs);

/// Parsed client side of a HELLO-BATCH frame.
struct HelloBatchRequest {
  BytesView Quote; ///< Points into the parsed frame; copy to outlive it.
  std::vector<X25519Key> ClientPubs;
};

/// Parses a HELLO-BATCH frame (including the leading type byte). The
/// returned quote view aliases \p Frame.
Expected<HelloBatchRequest> parseHelloBatchFrame(BytesView Frame);

/// One minted session in a HELLO-BATCH-OK frame, in key-list order.
struct BatchSession {
  uint64_t Sid = 0;
  X25519Key ServerPub{};
};

/// Builds a HELLO-BATCH-OK frame.
Bytes helloBatchOkFrame(const std::vector<BatchSession> &Sessions);

/// Parses a HELLO-BATCH-OK frame (ERROR frames surface as errors).
Expected<std::vector<BatchSession>> parseHelloBatchOkFrame(BytesView Frame);

/// Builds an ERROR frame.
Bytes errorFrame(const std::string &Message);

/// Marker the server embeds in ERROR frames whose cure is a fresh
/// attestation (stale/evicted session, exhausted request budget, an
/// enclave recycled out from under the session). Clients branch with
/// `errorAsksReattest` instead of parsing prose.
inline constexpr const char *ReattestMarker = "[re-attest]";

/// True when an ERROR message carries the re-attest marker.
bool errorAsksReattest(const std::string &Message);

//===----------------------------------------------------------------------===//
// Request envelope (deadline + criticality)
//===----------------------------------------------------------------------===//
//
// Frame:
//   ENVELOPE : 0xc4 || version u8 || deadline_ms u32 || criticality u8 ||
//              inner frame (HELLO / HELLO-BATCH / RECORD)
//
// The envelope threads the production-RPC trio through the wire protocol:
// a remaining-time deadline (milliseconds of budget left at send time;
// 0 = none) and a criticality class the server sheds by under pressure.
// Parsing is strict -- unknown versions, out-of-range criticality bytes,
// truncated headers, empty inners, and nested envelopes are all rejected
// -- and bare (un-enveloped) frames keep working with no deadline and
// Default criticality, so old clients interoperate unchanged.

/// Request criticality classes, in shed order: `Sheddable` goes first
/// under pressure, `Default` next, `Critical` last. Wire values are the
/// enum values; anything above `Sheddable` is a malformed frame.
enum class Criticality : uint8_t {
  Critical = 0,
  Default = 1,
  Sheddable = 2,
};

/// Human-readable criticality name (stats, logs, bench JSON).
const char *criticalityName(Criticality Class);

/// Maps a raw wire byte onto the enum, or nullopt for out-of-range values.
constexpr std::optional<Criticality> criticalityFromRaw(uint8_t Raw) {
  return Raw <= static_cast<uint8_t>(Criticality::Sheddable)
             ? std::optional<Criticality>(static_cast<Criticality>(Raw))
             : std::nullopt;
}

/// Envelope frame type byte.
constexpr uint8_t FrameEnvelope = 0xc4;

/// The one envelope version this build speaks. Versioning is strict: a
/// frame claiming any other version is rejected rather than half-parsed.
constexpr uint8_t EnvelopeVersion = 1;

/// Wire size of the envelope header: type || version || deadline_ms u32 ||
/// criticality.
constexpr size_t EnvelopeHeaderSize = 1 + 1 + 4 + 1;

/// A parsed request envelope.
struct RequestEnvelope {
  /// Remaining request budget in milliseconds at send time; 0 = none.
  uint32_t DeadlineMs = 0;
  Criticality Class = Criticality::Default;
  /// The enclosed frame. Aliases the parsed bytes; copy to outlive them.
  BytesView Inner;
};

/// Wraps \p Inner in an envelope carrying \p DeadlineMs and \p Class.
Bytes envelopeFrame(uint32_t DeadlineMs, Criticality Class, BytesView Inner);

/// Parses an envelope frame (including the leading type byte). Strict:
/// unknown version, out-of-range criticality, short header, empty inner,
/// or a nested envelope are errors, never silently defaulted.
Expected<RequestEnvelope> parseEnvelopeFrame(BytesView Frame);

/// Normalizes any request frame into an envelope view: envelope frames
/// parse strictly; every other frame becomes {no deadline, Default,
/// whole frame} so pre-envelope clients keep working.
Expected<RequestEnvelope> unwrapRequest(BytesView Frame);

/// Marker the server embeds in ERROR frames for requests it expired
/// because their remaining deadline could not cover the measured service
/// time (admission control). The cure is a fresh request with a larger
/// budget, not a retry of this one.
inline constexpr const char *DeadlineExpiredMarker = "[deadline-expired]";

/// True when an ERROR message carries the deadline-expired marker.
bool errorSaysDeadlineExpired(const std::string &Message);

/// Wire size of an OVERLOADED frame: type || retry-after-ms u32.
constexpr size_t OverloadedFrameSize = 1 + 4;

/// Builds an OVERLOADED frame advising the client to retry this endpoint
/// no sooner than \p RetryAfterMs from now.
Bytes overloadedFrame(uint32_t RetryAfterMs);

/// If \p Frame is a well-formed OVERLOADED frame, returns its
/// retry-after hint; otherwise nullopt (malformed overload frames are
/// treated as ordinary garbage, not trusted as backpressure).
std::optional<uint32_t> overloadedRetryAfterMs(BytesView Frame);

} // namespace elide

#endif // SGXELIDE_SERVER_PROTOCOL_H
