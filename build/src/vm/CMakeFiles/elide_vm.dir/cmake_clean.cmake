file(REMOVE_RECURSE
  "CMakeFiles/elide_vm.dir/Disassembler.cpp.o"
  "CMakeFiles/elide_vm.dir/Disassembler.cpp.o.d"
  "CMakeFiles/elide_vm.dir/Interpreter.cpp.o"
  "CMakeFiles/elide_vm.dir/Interpreter.cpp.o.d"
  "CMakeFiles/elide_vm.dir/MemoryBus.cpp.o"
  "CMakeFiles/elide_vm.dir/MemoryBus.cpp.o.d"
  "libelide_vm.a"
  "libelide_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elide_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
