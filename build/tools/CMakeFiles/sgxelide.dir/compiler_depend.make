# Empty compiler generated dependencies file for sgxelide.
# This may be replaced when dependencies are built.
