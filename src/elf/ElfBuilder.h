//===- elf/ElfBuilder.h - Emit ELF64 enclave shared objects ----------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constructs ELF64 enclave images from scratch. This is the Elc compiler's
/// object-file backend (the stand-in for the gcc+ld pipeline the paper's
/// build system uses). The produced files parse with `ElfImage` and load
/// with the SGX device model.
///
/// Layout convention: every SHF_ALLOC section is placed so that its file
/// offset equals its virtual address (base 0), each in its own PT_LOAD
/// segment whose flags mirror the section flags. Non-alloc sections
/// (.symtab, string tables, .ecall) follow the loadable content.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_ELF_ELFBUILDER_H
#define SGXELIDE_ELF_ELFBUILDER_H

#include "elf/ElfTypes.h"
#include "support/Bytes.h"
#include "support/Error.h"

#include <vector>

namespace elide {

/// Incrementally assembles an ELF64 file.
class ElfBuilder {
public:
  /// Adds a section with file-backed contents. For SHF_ALLOC sections,
  /// \p Addr must be page-aligned and non-overlapping with prior sections.
  /// Returns the section's index (0 is the implicit null section).
  size_t addProgbits(const std::string &Name, uint64_t Addr, Bytes Contents,
                     uint64_t Flags);

  /// Adds a zero-initialized section (e.g. .bss) occupying memory only.
  size_t addNobits(const std::string &Name, uint64_t Addr, uint64_t MemSize,
                   uint64_t Flags);

  /// Adds a symbol. \p SectionIndex is a value returned by addProgbits /
  /// addNobits; \p Value is a virtual address.
  void addSymbol(const std::string &Name, uint64_t Value, uint64_t Size,
                 uint8_t Type, size_t SectionIndex);

  /// Serializes the file. Fails when alloc sections overlap headers or
  /// each other.
  Expected<Bytes> build() const;

private:
  struct PendingSection {
    std::string Name;
    uint32_t Type = SHT_PROGBITS;
    uint64_t Flags = 0;
    uint64_t Addr = 0;
    uint64_t MemSize = 0;
    Bytes Contents;
  };
  struct PendingSymbol {
    std::string Name;
    uint64_t Value = 0;
    uint64_t Size = 0;
    uint8_t Type = STT_FUNC;
    size_t SectionIndex = 0;
  };

  std::vector<PendingSection> PendingSections;
  std::vector<PendingSymbol> PendingSymbols;
};

} // namespace elide

#endif // SGXELIDE_ELF_ELFBUILDER_H
