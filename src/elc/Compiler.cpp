//===- elc/Compiler.cpp - Elc compiler driver and linker ----------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "elc/Compiler.h"

#include "elc/Lexer.h"
#include "elc/Parser.h"
#include "elf/ElfBuilder.h"
#include "vm/Isa.h"

#include <map>

using namespace elide;
using namespace elide::elc;

static uint64_t alignUp(uint64_t V, uint64_t A) { return (V + A - 1) / A * A; }

/// Merges parsed modules; duplicate externs with identical names collapse,
/// duplicate definitions are errors (reported by codegen's dedup pass).
static Module mergeModules(std::vector<Module> Modules) {
  Module Out;
  std::map<std::string, bool> SeenExtern;
  for (Module &M : Modules) {
    for (FunctionDecl &F : M.Functions) {
      if (F.Linkage != CalleeKind::Local) {
        if (SeenExtern.count(F.Name))
          continue;
        SeenExtern[F.Name] = true;
      }
      Out.Functions.push_back(std::move(F));
    }
    for (GlobalDecl &G : M.Globals)
      Out.Globals.push_back(std::move(G));
  }
  return Out;
}

Expected<CompileResult>
elide::elc::compileEnclave(const std::vector<SourceFile> &Sources,
                           const CallRegistry &Calls) {
  TypeArena Types;
  std::vector<Module> Modules;
  for (const SourceFile &File : Sources) {
    ELIDE_TRY(std::vector<Token> Tokens, lex(File.Name, File.Source));
    ELIDE_TRY(Module M, parse(File.Name, Tokens, Types));
    Modules.push_back(std::move(M));
  }
  Module Merged = mergeModules(std::move(Modules));

  // The `__bridge_` namespace belongs to the compiler: bridge symbols are
  // implicitly whitelisted by the sanitizer (and trusted by the loader as
  // ecall entry points), so a user-defined `__bridge_evil` would ship
  // unsanitized and masquerade as an entry thunk.
  const std::string Reserved = bridgePrefix();
  for (const FunctionDecl &F : Merged.Functions)
    if (F.Name.compare(0, Reserved.size(), Reserved) == 0)
      return makeError("function name '" + F.Name + "' uses the reserved '" +
                       Reserved + "' prefix");
  for (const GlobalDecl &G : Merged.Globals)
    if (G.Name.compare(0, Reserved.size(), Reserved) == 0)
      return makeError("global name '" + G.Name + "' uses the reserved '" +
                       Reserved + "' prefix");

  ELIDE_TRY(CompiledUnit Unit, generateCode(Merged, Calls, Types));

  // Synthesize ecall bridge thunks: `__bridge_f: call f; halt`.
  std::vector<std::string> Exports;
  {
    std::vector<CompiledFunction> Bridges;
    for (const CompiledFunction &F : Unit.Functions) {
      if (!F.Exported)
        continue;
      Exports.push_back(F.Name);
      CompiledFunction B;
      B.Name = std::string(bridgePrefix()) + F.Name;
      size_t Site = 0;
      emitInstruction(B.Code, {Opcode::Call, 0, 0, 0, 0});
      emitInstruction(B.Code, {Opcode::Halt, 0, 0, 0, 0});
      B.Relocs.push_back({RelocKind::CallPcRel, Site, F.Name, 0});
      Bridges.push_back(std::move(B));
    }
    // Bridges first: they are the enclave's entry points, like the SDK's
    // dispatch table at the front of the trusted runtime.
    Bridges.insert(Bridges.end(),
                   std::make_move_iterator(Unit.Functions.begin()),
                   std::make_move_iterator(Unit.Functions.end()));
    Unit.Functions = std::move(Bridges);
  }

  // Lay out .text.
  std::map<std::string, uint64_t> FuncAddr;
  std::map<std::string, uint64_t> FuncSize;
  uint64_t TextCursor = TextBaseAddr;
  for (const CompiledFunction &F : Unit.Functions) {
    FuncAddr[F.Name] = TextCursor;
    FuncSize[F.Name] = F.Code.size();
    TextCursor += alignUp(F.Code.size(), SvmInstrSize);
  }
  uint64_t TextEnd = TextCursor;

  // Lay out .rodata.
  uint64_t RodataBase = alignUp(TextEnd, 0x1000);
  std::vector<uint64_t> RodataAddr(Unit.Rodata.size());
  uint64_t RodataCursor = RodataBase;
  for (size_t I = 0; I < Unit.Rodata.size(); ++I) {
    RodataAddr[I] = RodataCursor;
    RodataCursor += alignUp(Unit.Rodata[I].size(), 8);
  }
  uint64_t RodataEnd = RodataCursor;

  // Lay out .data and .bss.
  uint64_t DataBase = alignUp(RodataEnd == RodataBase ? RodataBase + 8
                                                      : RodataEnd,
                              0x1000);
  std::map<std::string, uint64_t> GlobalAddr;
  uint64_t DataCursor = DataBase;
  for (const CompiledGlobal &G : Unit.Globals) {
    if (G.Init.empty())
      continue;
    GlobalAddr[G.Name] = DataCursor;
    DataCursor += alignUp(G.Ty->sizeInBytes(), 8);
  }
  uint64_t DataEnd = DataCursor;
  uint64_t BssBase = alignUp(DataEnd == DataBase ? DataBase + 8 : DataEnd,
                             0x1000);
  uint64_t BssCursor = BssBase;
  for (const CompiledGlobal &G : Unit.Globals) {
    if (!G.Init.empty())
      continue;
    GlobalAddr[G.Name] = BssCursor;
    BssCursor += alignUp(G.Ty->sizeInBytes(), 8);
  }
  uint64_t BssEnd = BssCursor;

  if (BssEnd >= (1ULL << 31))
    return makeError("enclave image exceeds the 2 GiB address budget");

  // Resolve relocations and assemble .text bytes.
  Bytes Text(TextEnd - TextBaseAddr, 0);
  for (CompiledFunction &F : Unit.Functions) {
    uint64_t Base = FuncAddr[F.Name];
    for (const Reloc &R : F.Relocs) {
      uint64_t InstrAddr = Base + R.CodeOffset;
      int64_t Imm = 0;
      switch (R.Kind) {
      case RelocKind::CallPcRel: {
        auto It = FuncAddr.find(R.Symbol);
        if (It == FuncAddr.end())
          return makeError("undefined function '" + R.Symbol +
                           "' referenced from " + F.Name);
        Imm = static_cast<int64_t>(It->second) -
              static_cast<int64_t>(InstrAddr);
        break;
      }
      case RelocKind::AbsFunc: {
        auto It = FuncAddr.find(R.Symbol);
        if (It == FuncAddr.end())
          return makeError("undefined function '" + R.Symbol +
                           "' referenced from " + F.Name);
        Imm = static_cast<int64_t>(It->second);
        break;
      }
      case RelocKind::AbsData: {
        auto It = GlobalAddr.find(R.Symbol);
        if (It == GlobalAddr.end())
          return makeError("undefined global '" + R.Symbol +
                           "' referenced from " + F.Name);
        Imm = static_cast<int64_t>(It->second);
        break;
      }
      case RelocKind::AbsRodata:
        Imm = static_cast<int64_t>(RodataAddr[R.RodataId]);
        break;
      }
      if (Imm < INT32_MIN || Imm > INT32_MAX)
        return makeError("relocation overflow in " + F.Name);
      writeLE32(F.Code.data() + R.CodeOffset + 4,
                static_cast<uint32_t>(static_cast<int32_t>(Imm)));
    }
    std::memcpy(Text.data() + (Base - TextBaseAddr), F.Code.data(),
                F.Code.size());
  }

  // Assemble .rodata / .data contents.
  Bytes Rodata(RodataEnd > RodataBase ? RodataEnd - RodataBase : 0, 0);
  for (size_t I = 0; I < Unit.Rodata.size(); ++I)
    std::memcpy(Rodata.data() + (RodataAddr[I] - RodataBase),
                Unit.Rodata[I].data(), Unit.Rodata[I].size());
  Bytes Data(DataEnd > DataBase ? DataEnd - DataBase : 0, 0);
  for (const CompiledGlobal &G : Unit.Globals) {
    if (G.Init.empty())
      continue;
    std::memcpy(Data.data() + (GlobalAddr[G.Name] - DataBase), G.Init.data(),
                G.Init.size());
  }

  // Emit the ELF.
  ElfBuilder Builder;
  size_t TextSec = Builder.addProgbits(".text", TextBaseAddr, std::move(Text),
                                       SHF_ALLOC | SHF_EXECINSTR);
  size_t RodataSec = 0;
  if (!Rodata.empty())
    RodataSec =
        Builder.addProgbits(".rodata", RodataBase, std::move(Rodata),
                            SHF_ALLOC);
  size_t DataSec = 0;
  if (!Data.empty())
    DataSec = Builder.addProgbits(".data", DataBase, std::move(Data),
                                  SHF_ALLOC | SHF_WRITE);
  size_t BssSec = 0;
  if (BssEnd > BssBase)
    BssSec = Builder.addNobits(".bss", BssBase, BssEnd - BssBase,
                               SHF_ALLOC | SHF_WRITE);
  (void)RodataSec;

  // The ecall manifest: newline-separated export names. The loader binds
  // each export to its `__bridge_` symbol.
  {
    std::string Manifest;
    for (const std::string &Name : Exports)
      Manifest += Name + "\n";
    Builder.addProgbits(ecallSectionName(), 0, bytesOfString(Manifest), 0);
  }

  CompileResult Result;
  for (const CompiledFunction &F : Unit.Functions) {
    Builder.addSymbol(F.Name, FuncAddr[F.Name], FuncSize[F.Name], STT_FUNC,
                      TextSec);
    Result.FunctionNames.push_back(F.Name);
    Result.TextBytes += F.Code.size();
  }
  for (const CompiledGlobal &G : Unit.Globals)
    Builder.addSymbol(G.Name, GlobalAddr[G.Name], G.Ty->sizeInBytes(),
                      STT_OBJECT, G.Init.empty() ? BssSec : DataSec);

  ELIDE_TRY(Bytes File, Builder.build());
  Result.ElfFile = std::move(File);
  Result.ExportNames = std::move(Exports);
  return Result;
}
