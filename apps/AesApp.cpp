//===- apps/AesApp.cpp - The AES benchmark (tiny-AES128 port) -------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AES-128 ECB encryption/decryption with the cipher entirely inside the
/// enclave, mirroring the paper's port of tiny-AES128-C: the 4
/// encrypt/decrypt entry points plus the transitively required helpers all
/// live in the trusted component and are sanitized. The workload (the
/// app's "built-in test suite") checks FIPS-197 vectors, round trips, and
/// agreement with the host crypto library.
///
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "apps/AppUtil.h"

#include "crypto/Aes.h"
#include "crypto/Drbg.h"
#include "support/Hex.h"

using namespace elide;
using namespace elide::apps;

namespace {

/// The AES S-box (authoritative copy; emitted into the Elc source so the
/// enclave and oracle tables cannot drift).
const uint8_t Sbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

/// The AES algorithm body, in Elc. State bytes are indexed 4*column+row
/// (the FIPS input order).
const char *AesAlgorithm = R"elc(
var aes_rk: u8[176];

fn aes_xtime(x: u64) -> u64 {
  return ((x << 1) ^ (((x >> 7) & 1) * 0x1b)) & 0xff;
}

fn aes_gmul(a: u64, b: u64) -> u64 {
  var p: u64 = 0;
  var x: u64 = a & 0xff;
  var y: u64 = b & 0xff;
  while (y != 0) {
    if ((y & 1) != 0) {
      p = p ^ x;
    }
    x = aes_xtime(x);
    y = y >> 1;
  }
  return p & 0xff;
}

fn aes_expand_key(key: *u8) {
  for (var i: u64 = 0; i < 16; i = i + 1) {
    aes_rk[i] = key[i];
  }
  var rcon: u64 = 1;
  for (var w: u64 = 4; w < 44; w = w + 1) {
    var t0: u64 = aes_rk[4 * w - 4] as u64;
    var t1: u64 = aes_rk[4 * w - 3] as u64;
    var t2: u64 = aes_rk[4 * w - 2] as u64;
    var t3: u64 = aes_rk[4 * w - 1] as u64;
    if (w % 4 == 0) {
      var tmp: u64 = t0;
      t0 = (aes_sbox[t1] as u64) ^ rcon;
      t1 = aes_sbox[t2] as u64;
      t2 = aes_sbox[t3] as u64;
      t3 = aes_sbox[tmp] as u64;
      rcon = aes_xtime(rcon);
    }
    aes_rk[4 * w + 0] = aes_rk[4 * w - 16] ^ t0;
    aes_rk[4 * w + 1] = aes_rk[4 * w - 15] ^ t1;
    aes_rk[4 * w + 2] = aes_rk[4 * w - 14] ^ t2;
    aes_rk[4 * w + 3] = aes_rk[4 * w - 13] ^ t3;
  }
}

fn aes_add_round_key(st: *u8, round: u64) {
  for (var i: u64 = 0; i < 16; i = i + 1) {
    st[i] = st[i] ^ aes_rk[round * 16 + i];
  }
}

fn aes_sub_bytes(st: *u8) {
  for (var i: u64 = 0; i < 16; i = i + 1) {
    st[i] = aes_sbox[st[i]];
  }
}

fn aes_inv_sub_bytes(st: *u8) {
  for (var i: u64 = 0; i < 16; i = i + 1) {
    st[i] = aes_rsbox[st[i]];
  }
}

fn aes_shift_rows(st: *u8) {
  var t: u8[16];
  for (var c: u64 = 0; c < 4; c = c + 1) {
    for (var r: u64 = 0; r < 4; r = r + 1) {
      t[4 * c + r] = st[4 * ((c + r) % 4) + r];
    }
  }
  for (var i: u64 = 0; i < 16; i = i + 1) {
    st[i] = t[i];
  }
}

fn aes_inv_shift_rows(st: *u8) {
  var t: u8[16];
  for (var c: u64 = 0; c < 4; c = c + 1) {
    for (var r: u64 = 0; r < 4; r = r + 1) {
      t[4 * c + r] = st[4 * ((c + 4 - r) % 4) + r];
    }
  }
  for (var i: u64 = 0; i < 16; i = i + 1) {
    st[i] = t[i];
  }
}

fn aes_mix_columns(st: *u8) {
  for (var c: u64 = 0; c < 4; c = c + 1) {
    var a0: u64 = st[4 * c + 0] as u64;
    var a1: u64 = st[4 * c + 1] as u64;
    var a2: u64 = st[4 * c + 2] as u64;
    var a3: u64 = st[4 * c + 3] as u64;
    st[4 * c + 0] = aes_xtime(a0) ^ aes_xtime(a1) ^ a1 ^ a2 ^ a3;
    st[4 * c + 1] = a0 ^ aes_xtime(a1) ^ aes_xtime(a2) ^ a2 ^ a3;
    st[4 * c + 2] = a0 ^ a1 ^ aes_xtime(a2) ^ aes_xtime(a3) ^ a3;
    st[4 * c + 3] = aes_xtime(a0) ^ a0 ^ a1 ^ a2 ^ aes_xtime(a3);
  }
}

fn aes_inv_mix_columns(st: *u8) {
  for (var c: u64 = 0; c < 4; c = c + 1) {
    var a0: u64 = st[4 * c + 0] as u64;
    var a1: u64 = st[4 * c + 1] as u64;
    var a2: u64 = st[4 * c + 2] as u64;
    var a3: u64 = st[4 * c + 3] as u64;
    st[4 * c + 0] = aes_gmul(a0, 14) ^ aes_gmul(a1, 11) ^ aes_gmul(a2, 13) ^ aes_gmul(a3, 9);
    st[4 * c + 1] = aes_gmul(a0, 9) ^ aes_gmul(a1, 14) ^ aes_gmul(a2, 11) ^ aes_gmul(a3, 13);
    st[4 * c + 2] = aes_gmul(a0, 13) ^ aes_gmul(a1, 9) ^ aes_gmul(a2, 14) ^ aes_gmul(a3, 11);
    st[4 * c + 3] = aes_gmul(a0, 11) ^ aes_gmul(a1, 13) ^ aes_gmul(a2, 9) ^ aes_gmul(a3, 14);
  }
}

fn aes_encrypt_block(inp: *u8, outp: *u8) {
  var st: u8[16];
  memcpy8(&st[0], inp, 16);
  aes_add_round_key(&st[0], 0);
  for (var round: u64 = 1; round < 10; round = round + 1) {
    aes_sub_bytes(&st[0]);
    aes_shift_rows(&st[0]);
    aes_mix_columns(&st[0]);
    aes_add_round_key(&st[0], round);
  }
  aes_sub_bytes(&st[0]);
  aes_shift_rows(&st[0]);
  aes_add_round_key(&st[0], 10);
  memcpy8(outp, &st[0], 16);
}

fn aes_decrypt_block(inp: *u8, outp: *u8) {
  var st: u8[16];
  memcpy8(&st[0], inp, 16);
  aes_add_round_key(&st[0], 10);
  for (var round: u64 = 9; round >= 1; round = round - 1) {
    aes_inv_shift_rows(&st[0]);
    aes_inv_sub_bytes(&st[0]);
    aes_add_round_key(&st[0], round);
    aes_inv_mix_columns(&st[0]);
  }
  aes_inv_shift_rows(&st[0]);
  aes_inv_sub_bytes(&st[0]);
  aes_add_round_key(&st[0], 0);
  memcpy8(outp, &st[0], 16);
}

// Ecall: input = [mode u8: 0 encrypt / 1 decrypt][key 16][blocks N*16],
// output = transformed blocks.
export fn aes_run(inp: *u8, inlen: u64, outp: *u8, outcap: u64) -> u64 {
  if (inlen < 17) {
    return 1;
  }
  var mode: u64 = inp[0] as u64;
  var key: *u8 = inp + 1;
  var data: *u8 = inp + 17;
  var dlen: u64 = inlen - 17;
  if (dlen % 16 != 0) {
    return 2;
  }
  if (outcap < dlen) {
    return 3;
  }
  aes_expand_key(key);
  for (var off: u64 = 0; off < dlen; off = off + 16) {
    if (mode == 0) {
      aes_encrypt_block(data + off, outp + off);
    } else {
      aes_decrypt_block(data + off, outp + off);
    }
  }
  return 0;
}
)elc";

/// Builds [mode][key][data] ecall input.
Bytes aesInput(uint8_t Mode, BytesView Key, BytesView Data) {
  Bytes In;
  In.push_back(Mode);
  appendBytes(In, Key);
  appendBytes(In, Data);
  return In;
}

Error aesWorkload(sgx::Enclave &E) {
  // 1. FIPS-197 known answer.
  {
    Bytes Key = fromHex("000102030405060708090a0b0c0d0e0f").takeValue();
    Bytes Pt = fromHex("00112233445566778899aabbccddeeff").takeValue();
    ELIDE_TRY(Bytes Ct, runEcall(E, "aes_run", aesInput(0, Key, Pt), 16));
    if (toHex(Ct) != "69c4e0d86a7b0430d8cdb78070b4c55a")
      return makeError("AES enclave failed the FIPS-197 vector: " +
                       toHex(Ct));
  }

  // 2. Agreement with the host implementation + round trips on random
  //    multi-block messages.
  Drbg Rng(0xae5);
  for (int Iter = 0; Iter < 4; ++Iter) {
    Bytes Key = Rng.bytes(16);
    Bytes Pt = Rng.bytes(16 * 8);
    ELIDE_TRY(Bytes Ct, runEcall(E, "aes_run", aesInput(0, Key, Pt),
                                 Pt.size()));
    ELIDE_TRY(Aes Oracle, Aes::create(Key));
    for (size_t Off = 0; Off < Pt.size(); Off += 16) {
      uint8_t Expect[16];
      Oracle.encryptBlock(Pt.data() + Off, Expect);
      if (!std::equal(Expect, Expect + 16, Ct.begin() + Off))
        return makeError("AES enclave disagrees with the host cipher at "
                         "block " + std::to_string(Off / 16));
    }
    ELIDE_TRY(Bytes Back, runEcall(E, "aes_run", aesInput(1, Key, Ct),
                                   Ct.size()));
    if (Back != Pt)
      return makeError("AES enclave decrypt(encrypt(x)) != x");
  }
  return Error::success();
}

} // namespace

AppSpec apps::makeAesApp() {
  // Derive the inverse S-box from the S-box.
  uint8_t InvSbox[256];
  for (int I = 0; I < 256; ++I)
    InvSbox[Sbox[I]] = static_cast<uint8_t>(I);

  std::string Source;
  Source += elcArrayU8("aes_sbox", BytesView(Sbox, 256));
  Source += elcArrayU8("aes_rsbox", BytesView(InvSbox, 256));
  Source += AesAlgorithm;

  AppSpec Spec;
  Spec.Name = "AES";
  Spec.TrustedSources = {{"aes.elc", Source}};
  Spec.RunWorkload = aesWorkload;
  Spec.IsGame = false;
  return Spec;
}
