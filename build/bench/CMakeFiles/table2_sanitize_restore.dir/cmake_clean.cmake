file(REMOVE_RECURSE
  "CMakeFiles/table2_sanitize_restore.dir/Table2SanitizeRestore.cpp.o"
  "CMakeFiles/table2_sanitize_restore.dir/Table2SanitizeRestore.cpp.o.d"
  "table2_sanitize_restore"
  "table2_sanitize_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_sanitize_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
