//===- tests/fuzz/FuzzSecretMeta.cpp - SecretMeta decode fuzz target --------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fuzz target for `SecretMeta::deserialize`. The metadata blob crosses
/// the trust boundary twice -- decrypted off the authentication channel
/// inside the enclave, and read back from sealed storage -- so it must
/// hold up against arbitrary bytes. Properties: decode failures carry a
/// typed MetaErrc code; accepted blobs round-trip bit-exactly and respect
/// the plausibility bound on DataLength.
///
//===----------------------------------------------------------------------===//

#include "tests/fuzz/FuzzCommon.h"

#include "elide/SecretMeta.h"

namespace {

using namespace elide;

void fuzzSecretMetaOne(BytesView Input) {
  Expected<SecretMeta> Meta = SecretMeta::deserialize(Input);
  if (!Meta) {
    FUZZ_ASSERT(Meta.errorCode() == MetaErrcSize ||
                Meta.errorCode() == MetaErrcFlag ||
                Meta.errorCode() == MetaErrcImplausible);
    return;
  }
  FUZZ_ASSERT(Meta->DataLength <= SecretMeta::MaxDataLength);

  // Accepted blobs are canonical: re-encoding reproduces the input, and
  // re-decoding the encoding agrees.
  Bytes Encoded = Meta->serialize();
  FUZZ_ASSERT(Encoded.size() == Input.size());
  FUZZ_ASSERT(std::equal(Encoded.begin(), Encoded.end(), Input.begin()));
  Expected<SecretMeta> Again = SecretMeta::deserialize(Encoded);
  FUZZ_ASSERT(static_cast<bool>(Again));
}

} // namespace

#ifdef ELIDE_LIBFUZZER_DRIVER

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  fuzzSecretMetaOne(elide::BytesView(Data, Size));
  return 0;
}

#else // gtest replay + generative sweep

#include "tests/framework/Builders.h"
#include "tests/framework/FuzzHarness.h"

#include <gtest/gtest.h>

TEST(SecretMetaFuzz, CorpusReplay) {
  elide::Expected<size_t> N =
      elide::fuzz::replayCorpus("secretmeta", fuzzSecretMetaOne);
  ASSERT_TRUE(static_cast<bool>(N)) << N.errorMessage();
  EXPECT_GE(*N, 3u) << "secretmeta corpus lost its seed entries";
}

TEST(SecretMetaFuzz, GeneratedSweep) {
  elide::fuzz::generativeSweep(fuzzSecretMetaOne,
                               elide::fuzz::buildSecretMetaBlob,
                               /*Seed=*/0x4d45544100000001ull,
                               /*Iterations=*/2000);
}

#endif // ELIDE_LIBFUZZER_DRIVER
