//===- bench/AblationSgx2.cpp - SGX2 EMODPE ablation ---------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the paper's section 7 discussion: under SGX1 the sanitizer
/// must leave the text section writable for the enclave's whole lifetime
/// (an attack surface); SGX-v2 "will provide the ability" to change
/// permissions at runtime. This bench launches the AES enclave under both
/// attribute sets and shows: (a) SGX1 cannot revoke W, (b) SGX2 revokes W
/// after restoration, after which stores into text fault while execution
/// still works, and (c) what the lockdown costs.
///
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "elide/HostRuntime.h"
#include "elide/Pipeline.h"
#include "server/Transport.h"
#include "support/Stats.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace elide;

namespace {

struct Sgx2Scenario {
  BuildOptions Options;
  BuildArtifacts Artifacts;
  std::unique_ptr<sgx::SgxDevice> Device;
  std::unique_ptr<sgx::AttestationAuthority> Authority;
  std::unique_ptr<sgx::QuotingEnclave> Qe;
  std::unique_ptr<AuthServer> Server;
  std::unique_ptr<LoopbackTransport> Link;
};

Sgx2Scenario makeScenario(uint64_t Attributes) {
  Sgx2Scenario S;
  Drbg Rng(77);
  Ed25519Seed Seed{};
  Rng.fill(MutableBytesView(Seed.data(), 32));
  Ed25519KeyPair Vendor = ed25519KeyPairFromSeed(Seed);

  S.Options.Attributes = Attributes;
  Expected<BuildArtifacts> Artifacts = buildProtectedEnclave(
      apps::appByName("AES").TrustedSources, Vendor, S.Options);
  if (!Artifacts)
    std::abort();
  S.Artifacts = Artifacts.takeValue();

  S.Device = std::make_unique<sgx::SgxDevice>(31);
  S.Authority = std::make_unique<sgx::AttestationAuthority>(32);
  S.Qe = std::make_unique<sgx::QuotingEnclave>(*S.Device, *S.Authority);

  AuthServerConfig Config;
  Config.AuthorityKey = S.Authority->publicKey();
  Config.ExpectedMrEnclave = S.Artifacts.SanitizedSig.MrEnclave;
  Config.Meta = S.Artifacts.Meta;
  Config.SecretData = S.Artifacts.SecretData;
  S.Server = std::make_unique<AuthServer>(std::move(Config));
  S.Link = std::make_unique<LoopbackTransport>(*S.Server);
  return S;
}

struct RunResult {
  double RestoreMs = 0;
  double LockdownMs = 0;
  bool LockdownSucceeded = false;
  bool TextWritableAfter = true;
  bool WorkloadPassed = false;
};

RunResult runOnce(Sgx2Scenario &S) {
  RunResult R;
  Expected<std::unique_ptr<sgx::Enclave>> E =
      sgx::loadEnclave(*S.Device, S.Artifacts.SanitizedElf,
                       S.Artifacts.SanitizedSig, S.Options.Layout);
  if (!E)
    std::abort();
  ElideHost Host(S.Link.get(), S.Qe.get());
  Host.attach(**E);

  Timer T;
  Expected<uint64_t> Status = Host.restore(**E);
  R.RestoreMs = T.elapsedMs();
  if (!Status || *Status != 0)
    std::abort();

  // Attempt the text lockdown via the trusted library's tcall path
  // (elide_protect_text): page-walk W revocation.
  Timer T2;
  uint64_t TextStart = 0x1000;
  uint64_t TextEnd = TextStart + S.Artifacts.Meta.DataLength;
  bool Ok = true;
  for (uint64_t Page = TextStart; Page < TextEnd; Page += sgx::EpcPageSize)
    if ((*E)->restrictPagePermissions(Page, sgx::PermWrite)) {
      Ok = false;
      break;
    }
  R.LockdownMs = T2.elapsedMs();
  R.LockdownSucceeded = Ok;

  Expected<uint8_t> Perms = (*E)->pagePermissions(TextStart);
  R.TextWritableAfter = Perms && (*Perms & sgx::PermWrite);

  R.WorkloadPassed = !apps::appByName("AES").RunWorkload(**E);
  return R;
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n==============================================================="
              "================\n  Ablation: SGX1 permanent PF_W vs SGX2 "
              "post-restore lockdown (paper sec. 7)\n"
              "================================================================"
              "===============\n");
  std::printf("%-22s %12s %12s %10s %10s %9s\n", "Configuration",
              "Restore ms", "Lockdown ms", "Lockdown", "Text W?",
              "Workload");
  std::printf("%.*s\n", 80,
              "---------------------------------------------------------------"
              "-------------------");

  for (bool Sgx2 : {false, true}) {
    uint64_t Attrs = sgx::AttrDebug;
    if (Sgx2)
      Attrs |= sgx::AttrSgx2DynamicPerms;
    Sgx2Scenario S = makeScenario(Attrs);

    std::vector<double> RestoreMs, LockMs;
    RunResult Last;
    for (int Run = 0; Run < 10; ++Run) {
      Last = runOnce(S);
      RestoreMs.push_back(Last.RestoreMs);
      LockMs.push_back(Last.LockdownMs);
    }
    Summary Res = summarize(RestoreMs);
    Summary Lock = summarize(LockMs);
    std::printf("%-22s %6.2f±%4.2f %7.3f±%5.3f %10s %10s %9s\n",
                Sgx2 ? "SGX2 (EMODPE avail.)" : "SGX1 (paper setting)",
                Res.Mean, Res.StdDev, Lock.Mean, Lock.StdDev,
                Last.LockdownSucceeded ? "ok" : "refused",
                Last.TextWritableAfter ? "yes" : "no",
                Last.WorkloadPassed ? "pass" : "FAIL");
  }
  std::printf("\nExpected shape: SGX1 refuses the lockdown (text stays "
              "writable for the enclave's\nlifetime -- the residual risk "
              "the paper discusses); SGX2 revokes W cheaply and the\n"
              "workload still passes (X is untouched).\n");
  return 0;
}
