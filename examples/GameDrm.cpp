//===- examples/GameDrm.cpp - Protecting a game's asset pipeline ----------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating game scenario: 2048's asset-decryption code is
/// the anti-cheat/DRM secret. This example plays the attacker first --
/// disassembling the shipped enclave to hunt for the keystream function --
/// against both the unprotected and the SgxElide-protected image, then
/// runs the legitimate player flow (attest, restore, play).
///
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "elide/HostRuntime.h"
#include "elide/Pipeline.h"
#include "elf/ElfImage.h"
#include "server/AuthServer.h"
#include "server/Transport.h"
#include "sgx/EnclaveLoader.h"
#include "vm/Disassembler.h"

#include <cstdio>

using namespace elide;

/// The attacker's tool: disassemble a named function from a shipped
/// enclave file and report whether it contains anything to read.
static void attackFunction(const Bytes &ElfFile, const char *Function) {
  Expected<ElfImage> Image = ElfImage::parse(ElfFile);
  if (!Image)
    return;
  const ElfSymbol *Sym = Image->symbolByName(Function);
  const ElfSection *Text = Image->sectionByName(".text");
  if (!Sym || !Text) {
    std::printf("  (no symbol %s)\n", Function);
    return;
  }
  Bytes Code = Image->sectionContents(*Text);
  size_t Off = Sym->Value - Text->Addr;
  BytesView Body(Code.data() + Off, Sym->Size);
  size_t Valid = countValidInstructionSlots(Body);
  std::printf("  %s: %zu bytes, %zu/%zu slots decode as instructions\n",
              Function, static_cast<size_t>(Sym->Size), Valid,
              static_cast<size_t>(Sym->Size / 8));
  std::string Asm = disassemble(BytesView(Body.data(),
                                          Body.size() < 40 ? Body.size() : 40),
                                Sym->Value);
  std::printf("%s", Asm.c_str());
}

int main() {
  std::printf("== Game DRM example: 2048's secret asset decryptor ==\n\n");

  const apps::AppSpec &Game = apps::appByName("2048");

  Drbg Rng(0x60d);
  Ed25519Seed Seed{};
  Rng.fill(MutableBytesView(Seed.data(), 32));
  Ed25519KeyPair Vendor = ed25519KeyPairFromSeed(Seed);

  BuildOptions Options;
  Options.Storage = SecretStorage::Local; // Ship the data with the game.
  Expected<BuildArtifacts> Artifacts =
      buildProtectedEnclave(Game.TrustedSources, Vendor, Options);
  if (!Artifacts) {
    std::fprintf(stderr, "build failed: %s\n",
                 Artifacts.errorMessage().c_str());
    return 1;
  }

  std::printf("[attacker] disassembling the UNPROTECTED enclave:\n");
  attackFunction(Artifacts->PlainElf, "g2048_keystream");
  std::printf("\n[attacker] disassembling the SANITIZED enclave "
              "(what actually ships):\n");
  attackFunction(Artifacts->SanitizedElf, "g2048_keystream");

  // The legitimate player.
  std::printf("\n[player] launching the shipped game...\n");
  sgx::SgxDevice Device(0x60d60d);
  sgx::AttestationAuthority Authority(60);
  sgx::QuotingEnclave Qe(Device, Authority);

  AuthServerConfig Config;
  Config.AuthorityKey = Authority.publicKey();
  Config.ExpectedMrEnclave = Artifacts->SanitizedSig.MrEnclave;
  Config.Meta = Artifacts->Meta; // Holds the asset-code decryption key.
  AuthServer Server(std::move(Config));
  LoopbackTransport Link(Server);

  Expected<std::unique_ptr<sgx::Enclave>> E = sgx::loadEnclave(
      Device, Artifacts->SanitizedElf, Artifacts->SanitizedSig,
      Options.Layout);
  if (!E) {
    std::fprintf(stderr, "load failed: %s\n", E.errorMessage().c_str());
    return 1;
  }
  ElideHost Host(&Link, &Qe);
  Host.setSecretDataFile(Artifacts->SecretData); // the shipped data file
  Host.attach(**E);

  Expected<uint64_t> Status = Host.restore(**E);
  if (!Status || *Status != 0) {
    std::fprintf(stderr, "restore failed\n");
    return 1;
  }
  std::printf("[player] attested + restored; playing a deterministic "
              "game...\n");

  Bytes In;
  appendLE64(In, 2024);   // seed
  appendLE64(In, 500);    // steps
  appendLE64(In, 96);     // asset blob length (truncated view is fine)
  Expected<sgx::EcallResult> R = (*E)->ecall("g2048_play", In, 40);
  if (!R || !R->ok()) {
    std::fprintf(stderr, "game ecall failed\n");
    return 1;
  }
  std::printf("[player] final score %llu after %llu moves; board:\n",
              static_cast<unsigned long long>(readLE64(R->Output.data())),
              static_cast<unsigned long long>(
                  readLE64(R->Output.data() + 16)));
  for (int Row = 0; Row < 4; ++Row) {
    std::printf("  ");
    for (int Col = 0; Col < 4; ++Col) {
      uint8_t Exp = R->Output[24 + Row * 4 + Col];
      if (Exp == 0)
        std::printf("   . ");
      else
        std::printf("%4u ", 1u << Exp);
    }
    std::printf("\n");
  }
  std::printf("\ngame DRM example OK\n");
  return 0;
}
