
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgx/Attestation.cpp" "src/sgx/CMakeFiles/elide_sgx.dir/Attestation.cpp.o" "gcc" "src/sgx/CMakeFiles/elide_sgx.dir/Attestation.cpp.o.d"
  "/root/repo/src/sgx/Enclave.cpp" "src/sgx/CMakeFiles/elide_sgx.dir/Enclave.cpp.o" "gcc" "src/sgx/CMakeFiles/elide_sgx.dir/Enclave.cpp.o.d"
  "/root/repo/src/sgx/EnclaveLoader.cpp" "src/sgx/CMakeFiles/elide_sgx.dir/EnclaveLoader.cpp.o" "gcc" "src/sgx/CMakeFiles/elide_sgx.dir/EnclaveLoader.cpp.o.d"
  "/root/repo/src/sgx/SgxDevice.cpp" "src/sgx/CMakeFiles/elide_sgx.dir/SgxDevice.cpp.o" "gcc" "src/sgx/CMakeFiles/elide_sgx.dir/SgxDevice.cpp.o.d"
  "/root/repo/src/sgx/SgxTypes.cpp" "src/sgx/CMakeFiles/elide_sgx.dir/SgxTypes.cpp.o" "gcc" "src/sgx/CMakeFiles/elide_sgx.dir/SgxTypes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/elide_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/elf/CMakeFiles/elide_elf.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/elide_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/elc/CMakeFiles/elide_elc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/elide_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
