//===- sgx/SgxTypes.h - SGX architectural structures -------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The architectural data structures of the SGX device model: measurement,
/// SIGSTRUCT, REPORT / TARGETINFO, and attestation quotes. Field layouts
/// are simplified but the *protocol roles* match the Intel SDM: SIGSTRUCT
/// carries a vendor signature over the enclave measurement checked at
/// EINIT; REPORT is MAC'd with a key only the target enclave (or the
/// quoting enclave) can derive; a quote is a REPORT body signed with a
/// device attestation key chained to the attestation authority.
///
/// Substitution (see DESIGN.md): Ed25519 replaces RSA-3072 (SIGSTRUCT) and
/// EPID (quotes).
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_SGX_SGXTYPES_H
#define SGXELIDE_SGX_SGXTYPES_H

#include "crypto/Cmac.h"
#include "crypto/Ed25519.h"
#include "support/Bytes.h"
#include "support/Error.h"

#include <array>

namespace elide {
namespace sgx {

/// `Error::code()` values for SGX structure parsing and enclave launch
/// failures. The loader's callers (and the adversarial-input tests) branch
/// on these rather than matching message text; 0x53 ('S') namespaces the
/// code space.
enum SgxErrc : int {
  SgxErrcMalformed = 0x5301,           ///< Serialized structure has the
                                       ///< wrong size or impossible fields.
  SgxErrcBadSignature = 0x5302,        ///< SIGSTRUCT/quote signature does
                                       ///< not verify.
  SgxErrcMeasurementMismatch = 0x5303, ///< EINIT: measured MRENCLAVE is not
                                       ///< the one the vendor signed.
};

/// MRENCLAVE / MRSIGNER: a SHA-256 digest.
using Measurement = std::array<uint8_t, 32>;

/// User data bound into a report (e.g. a channel public key).
using ReportData = std::array<uint8_t, 64>;

/// Enclave attribute bits.
enum AttributeBits : uint64_t {
  /// Debug enclave: debug ocalls (printing) permitted.
  AttrDebug = 1 << 0,
  /// SGX2: runtime page-permission extension (EMODPE) available. Off by
  /// default -- SGX1 semantics, the environment the paper targets.
  AttrSgx2DynamicPerms = 1 << 1,
};

/// Page permission bits inside the EPC (match ELF PF_* values).
enum PagePerm : uint8_t {
  PermExec = 1,
  PermWrite = 2,
  PermRead = 4,
};

constexpr uint64_t EpcPageSize = 0x1000;
/// EEXTEND measures 256 bytes at a time: 16 invocations per page, as the
/// paper's background section describes.
constexpr uint64_t EextendChunk = 256;

/// The enclave vendor's signature structure, checked at EINIT.
struct SigStruct {
  Measurement MrEnclave{};
  uint64_t Attributes = 0;
  Ed25519PublicKey VendorKey{};
  Ed25519Signature Signature{};

  /// MRSIGNER: hash of the vendor's public key.
  Measurement mrSigner() const;

  /// The byte string the vendor signs.
  Bytes signedMessage() const;

  /// Creates a signed SIGSTRUCT for a measurement.
  static SigStruct sign(const Ed25519KeyPair &Vendor,
                        const Measurement &MrEnclave, uint64_t Attributes);

  /// Verifies the vendor signature (not the measurement match; EINIT
  /// checks that separately).
  bool verify() const;

  Bytes serialize() const;
  static Expected<SigStruct> deserialize(BytesView Data);
};

/// The attested body shared by REPORT and QUOTE.
struct ReportBody {
  Measurement MrEnclave{};
  Measurement MrSigner{};
  uint64_t Attributes = 0;
  ReportData Data{};

  Bytes serialize() const;
  static Expected<ReportBody> deserialize(BytesView Bytes);
};

/// Identifies the enclave a report is targeted at (EREPORT destination,
/// which determines the MAC key).
struct TargetInfo {
  Measurement MrEnclave{};
};

/// A local-attestation report: body + CMAC under the target's report key.
struct Report {
  ReportBody Body;
  CmacTag Mac{};
};

/// A remote-attestation quote: report body signed by the quoting enclave's
/// attestation key, whose certificate is signed by the authority root.
struct Quote {
  ReportBody Body;
  Ed25519PublicKey AttestationKey{};
  Ed25519Signature KeyCertificate{}; ///< Authority's signature over AttestationKey.
  Ed25519Signature Signature{};      ///< Attestation key's signature over Body.

  Bytes serialize() const;
  static Expected<Quote> deserialize(BytesView Data);
};

/// Key-derivation policy for sealing (Intel SDM: KEYPOLICY).
enum class SealPolicy : uint8_t {
  MrEnclave = 0, ///< Only the identical enclave can unseal.
  MrSigner = 1,  ///< Any enclave from the same vendor can unseal.
};

} // namespace sgx
} // namespace elide

#endif // SGXELIDE_SGX_SGXTYPES_H
