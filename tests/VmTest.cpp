//===- tests/VmTest.cpp - SVM ISA and interpreter unit tests -----------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ISA semantics and Vm behavior. Every execution test runs on every
/// backend (TEST_P over VmBackendKind): the reference switch engine and
/// the pre-decoding threaded engine must be indistinguishable through
/// the Vm surface. Cases named *Fused* / *PreDecode* target the spots
/// where a pre-decoding, superinstruction-fusing engine could diverge:
/// trap PCs inside fused pairs, budget exhaustion between the halves of
/// a pair, and code rewritten after it has been decoded.
///
//===----------------------------------------------------------------------===//

#include "vm/Disassembler.h"
#include "vm/ExecBackend.h"
#include "vm/Interpreter.h"

#include <gtest/gtest.h>

using namespace elide;

namespace {

/// Assembles instructions at offset 0 of a FlatMemory and runs from 0 on
/// a configurable backend. Registers are snapshotted after every run so
/// tests can assert on partial progress at a trap.
struct Harness {
  FlatMemory Ram{1 << 16};
  Bytes Code;
  VmBackendKind Kind = defaultVmBackendKind();
  std::array<uint64_t, SvmRegCount> RegsAfter{};

  void emit(Opcode Op, uint8_t Rd = 0, uint8_t Rs1 = 0, uint8_t Rs2 = 0,
            int32_t Imm = 0) {
    emitInstruction(Code, {Op, Rd, Rs1, Rs2, Imm});
  }

  ExecResult run(std::function<void(Vm &)> Setup = nullptr,
                 uint64_t Budget = 1 << 20) {
    EXPECT_FALSE(static_cast<bool>(Ram.write(0, Code)));
    Vm M(Ram);
    M.setBackend(Kind);
    M.setReg(SvmRegSp, (1 << 16) - 64);
    if (Setup)
      Setup(M);
    ExecResult R = M.run(0, Budget);
    for (unsigned Reg = 0; Reg < SvmRegCount; ++Reg)
      RegsAfter[Reg] = M.reg(Reg);
    return R;
  }
};

/// Fixture parameterized over the execution backend under test.
class VmExecTest : public ::testing::TestWithParam<VmBackendKind> {
protected:
  void SetUp() override { H.Kind = GetParam(); }
  Harness H;
};

INSTANTIATE_TEST_SUITE_P(
    Backends, VmExecTest, ::testing::ValuesIn(allVmBackendKinds()),
    [](const ::testing::TestParamInfo<VmBackendKind> &Info) {
      return std::string(vmBackendKindName(Info.param));
    });

//===----------------------------------------------------------------------===//
// Encoding
//===----------------------------------------------------------------------===//

TEST(IsaTest, EncodeDecodeRoundTrip) {
  Instruction I{Opcode::AddI, 5, 6, 7, -12345};
  uint8_t Buf[8];
  encodeInstruction(I, Buf);
  Instruction Back = decodeInstruction(Buf);
  EXPECT_EQ(Back.Op, I.Op);
  EXPECT_EQ(Back.Rd, I.Rd);
  EXPECT_EQ(Back.Rs1, I.Rs1);
  EXPECT_EQ(Back.Rs2, I.Rs2);
  EXPECT_EQ(Back.Imm, I.Imm);
}

TEST(IsaTest, ZeroBytesDecodeToIllegal) {
  uint8_t Zeros[8] = {0};
  Instruction I = decodeInstruction(Zeros);
  EXPECT_EQ(I.Op, Opcode::Illegal);
  EXPECT_FALSE(isValidOpcode(0));
}

TEST(IsaTest, RegisterFieldsDecodeLow5Bits) {
  // Register operands are architecturally 5 bits; a decoder that takes
  // the full byte indexes past the 32-entry register file on crafted
  // code (found by the vmdiff fuzzer -- keep this masked).
  uint8_t Raw[8] = {0x02, 0xff, 0xe3, 0x25, 0, 0, 0, 0};
  Instruction I = decodeInstruction(Raw);
  EXPECT_EQ(I.Rd, 31);
  EXPECT_EQ(I.Rs1, 3);
  EXPECT_EQ(I.Rs2, 5);
}

TEST(IsaTest, AllNamedOpcodesAreValid) {
  for (uint8_t Op : {0x01, 0x02, 0x0e, 0x10, 0x19, 0x20, 0x25, 0x30, 0x36,
                     0x38, 0x3b, 0x40, 0x45, 0x50, 0x53})
    EXPECT_TRUE(isValidOpcode(Op)) << "opcode " << int(Op);
  for (uint8_t Op : {0x00, 0x0f, 0x26, 0x37, 0x3c, 0x46, 0x54, 0xff})
    EXPECT_FALSE(isValidOpcode(Op)) << "opcode " << int(Op);
}

//===----------------------------------------------------------------------===//
// Arithmetic semantics
//===----------------------------------------------------------------------===//

struct AluCase {
  Opcode Op;
  uint64_t A, B, Expect;
};

class AluTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluTest, ComputesExpectedOnEveryBackend) {
  const AluCase &C = GetParam();
  for (VmBackendKind Kind : allVmBackendKinds()) {
    SCOPED_TRACE(vmBackendKindName(Kind));
    Harness H;
    H.Kind = Kind;
    H.emit(C.Op, 1, 2, 3);
    H.emit(Opcode::Halt);
    ExecResult R = H.run([&](Vm &M) {
      M.setReg(2, C.A);
      M.setReg(3, C.B);
    });
    ASSERT_TRUE(R.halted()) << R.Message;
    EXPECT_EQ(R.ReturnValue, C.Expect);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluTest,
    ::testing::Values(
        AluCase{Opcode::Add, 7, 8, 15},
        AluCase{Opcode::Add, UINT64_MAX, 1, 0}, // wraps
        AluCase{Opcode::Sub, 5, 9, static_cast<uint64_t>(-4)},
        AluCase{Opcode::Mul, 1ull << 33, 1ull << 32, 0}, // wraps
        AluCase{Opcode::DivU, 100, 7, 14},
        AluCase{Opcode::DivS, static_cast<uint64_t>(-100), 7,
                static_cast<uint64_t>(-14)},
        AluCase{Opcode::RemU, 100, 7, 2},
        AluCase{Opcode::RemS, static_cast<uint64_t>(-100), 7,
                static_cast<uint64_t>(-2)},
        AluCase{Opcode::DivS, static_cast<uint64_t>(INT64_MIN),
                static_cast<uint64_t>(-1),
                static_cast<uint64_t>(INT64_MIN)}, // overflow wraps
        AluCase{Opcode::And, 0xff00, 0x0ff0, 0x0f00},
        AluCase{Opcode::Or, 0xff00, 0x0ff0, 0xfff0},
        AluCase{Opcode::Xor, 0xff00, 0x0ff0, 0xf0f0},
        AluCase{Opcode::Shl, 1, 63, 1ull << 63},
        AluCase{Opcode::Shl, 1, 64, 1},              // shift masks to 0
        AluCase{Opcode::ShrL, 1ull << 63, 63, 1},
        AluCase{Opcode::ShrA, static_cast<uint64_t>(-8), 2,
                static_cast<uint64_t>(-2)},
        AluCase{Opcode::Seq, 4, 4, 1}, AluCase{Opcode::Seq, 4, 5, 0},
        AluCase{Opcode::Sne, 4, 5, 1},
        AluCase{Opcode::SltU, 1, static_cast<uint64_t>(-1), 1},
        AluCase{Opcode::SltS, static_cast<uint64_t>(-1), 1, 1},
        AluCase{Opcode::SleU, 4, 4, 1},
        AluCase{Opcode::SleS, static_cast<uint64_t>(-5),
                static_cast<uint64_t>(-5), 1}));

TEST_P(VmExecTest, RegisterZeroIsHardwired) {
  H.emit(Opcode::LdI, 0, 0, 0, 77); // write to r0 discarded
  H.emit(Opcode::Add, 1, 0, 0);     // r1 = r0 + r0
  H.emit(Opcode::Halt);
  ExecResult R = H.run();
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(R.ReturnValue, 0u);
}

TEST_P(VmExecTest, LdIAndLdIHBuild64BitConstant) {
  H.emit(Opcode::LdI, 1, 0, 0, static_cast<int32_t>(0xdeadbeef));
  H.emit(Opcode::LdIH, 1, 0, 0, static_cast<int32_t>(0xcafebabe));
  H.emit(Opcode::Halt);
  ExecResult R = H.run();
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(R.ReturnValue, 0xcafebabedeadbeefULL);
}

TEST_P(VmExecTest, HighRegisterFieldBitsAreIgnored) {
  // Regression for the vmdiff-found decode bug: operand bytes with the
  // high bits set alias onto r(n & 31) instead of walking off the
  // register file.
  H.emit(Opcode::LdI, 3, 0, 0, 21);
  H.emit(Opcode::Add, 1, 0xe3, 0x83); // rs1 = rs2 = r3
  H.emit(Opcode::Halt);
  ExecResult R = H.run();
  ASSERT_TRUE(R.halted()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 42u);
}

//===----------------------------------------------------------------------===//
// Memory access
//===----------------------------------------------------------------------===//

TEST_P(VmExecTest, LoadStoreWidths) {
  H.emit(Opcode::LdI, 2, 0, 0, 0x1000); // address
  H.emit(Opcode::LdI, 3, 0, 0, -2);     // 0xffff...fffe
  H.emit(Opcode::StD, 0, 2, 3, 0);
  H.emit(Opcode::LdBU, 4, 2, 0, 0);
  H.emit(Opcode::LdBS, 5, 2, 0, 0);
  H.emit(Opcode::LdHU, 6, 2, 0, 0);
  H.emit(Opcode::LdWU, 7, 2, 0, 0);
  H.emit(Opcode::LdWS, 8, 2, 0, 0);
  H.emit(Opcode::Add, 1, 4, 0);
  H.emit(Opcode::Halt);
  ExecResult R = H.run();
  ASSERT_TRUE(R.halted()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 0xfeu);
  EXPECT_EQ(H.RegsAfter[5], static_cast<uint64_t>(int64_t{-2}));
  EXPECT_EQ(H.RegsAfter[6], 0xfffeu);
  EXPECT_EQ(H.RegsAfter[7], 0xfffffffeu);
  EXPECT_EQ(H.RegsAfter[8], static_cast<uint64_t>(int64_t{-2}));

  uint8_t Byte;
  ASSERT_FALSE(static_cast<bool>(
      H.Ram.read(0x1000, MutableBytesView(&Byte, 1))));
  EXPECT_EQ(Byte, 0xfe);
}

TEST_P(VmExecTest, SignExtendingLoads) {
  H.emit(Opcode::LdI, 2, 0, 0, 0x2000);
  H.emit(Opcode::LdI, 3, 0, 0, 0x80); // byte 0x80
  H.emit(Opcode::StB, 0, 2, 3, 0);
  H.emit(Opcode::LdBS, 1, 2, 0, 0);
  H.emit(Opcode::Halt);
  ExecResult R = H.run();
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(R.ReturnValue, static_cast<uint64_t>(int64_t{-128}));
}

TEST_P(VmExecTest, OutOfBoundsLoadFaults) {
  H.emit(Opcode::LdI, 2, 0, 0, 0x7fffffff);
  H.emit(Opcode::LdD, 1, 2, 0, 0);
  H.emit(Opcode::Halt);
  ExecResult R = H.run();
  EXPECT_EQ(R.Kind, TrapKind::MemoryFault);
  EXPECT_EQ(R.Pc, 8u);
  EXPECT_EQ(R.InstructionsRetired, 2u); // faulting loads still retire
}

//===----------------------------------------------------------------------===//
// Control flow and traps
//===----------------------------------------------------------------------===//

TEST_P(VmExecTest, CallAndRet) {
  H.emit(Opcode::Call, 0, 0, 0, 24); // to offset 24
  H.emit(Opcode::Halt);              // offset 8 (after return)
  H.emit(Opcode::Nop);               // offset 16 (never runs)
  H.emit(Opcode::LdI, 1, 0, 0, 55);  // offset 24: callee
  H.emit(Opcode::Ret);
  ExecResult R = H.run();
  ASSERT_TRUE(R.halted()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 55u);
}

TEST_P(VmExecTest, IndirectCall) {
  H.emit(Opcode::LdI, 2, 0, 0, 32);
  H.emit(Opcode::CallR, 0, 2, 0, 0);
  H.emit(Opcode::Halt);
  H.emit(Opcode::Nop);
  H.emit(Opcode::LdI, 1, 0, 0, 99); // offset 32
  H.emit(Opcode::Ret);
  ExecResult R = H.run();
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(R.ReturnValue, 99u);
}

TEST_P(VmExecTest, RetAtTopLevelUnderflows) {
  H.emit(Opcode::Ret);
  EXPECT_EQ(H.run().Kind, TrapKind::CallStackUnderflow);
}

TEST_P(VmExecTest, CallDepthLimit) {
  H.emit(Opcode::Call, 0, 0, 0, 0); // calls itself forever
  ExecResult R = H.run([](Vm &M) { M.setMaxCallDepth(64); });
  EXPECT_EQ(R.Kind, TrapKind::CallDepthExceeded);
}

TEST_P(VmExecTest, BudgetStopsInfiniteLoop) {
  H.emit(Opcode::Jmp, 0, 0, 0, 0); // jumps to itself
  ExecResult R = H.run(nullptr, 1000);
  EXPECT_EQ(R.Kind, TrapKind::BudgetExhausted);
  EXPECT_EQ(R.InstructionsRetired, 1000u);
}

TEST_P(VmExecTest, ConditionalBranches) {
  H.emit(Opcode::LdI, 2, 0, 0, 0);
  H.emit(Opcode::Beqz, 0, 2, 0, 24); // taken: to offset 8+24=32
  H.emit(Opcode::LdI, 1, 0, 0, 1);   // skipped
  H.emit(Opcode::Halt);              // offset 24 (skipped)
  H.emit(Opcode::LdI, 1, 0, 0, 2);   // offset 32
  H.emit(Opcode::Halt);
  ExecResult R = H.run();
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(R.ReturnValue, 2u);
}

TEST_P(VmExecTest, UnalignedPcTraps) {
  H.emit(Opcode::Jmp, 0, 0, 0, 4); // misaligned target
  ExecResult R = H.run();
  EXPECT_EQ(R.Kind, TrapKind::UnalignedPc);
}

TEST_P(VmExecTest, ExplicitTrapCarriesCode) {
  H.emit(Opcode::Trap, 0, 0, 0, 0xbeef);
  ExecResult R = H.run();
  EXPECT_EQ(R.Kind, TrapKind::ExplicitTrap);
  EXPECT_EQ(R.TrapCode, 0xbeef);
}

TEST_P(VmExecTest, IllegalInstructionReportsPc) {
  H.emit(Opcode::Nop);
  H.emit(Opcode::Illegal);
  ExecResult R = H.run();
  EXPECT_EQ(R.Kind, TrapKind::IllegalInstruction);
  EXPECT_EQ(R.Pc, 8u);
}

//===----------------------------------------------------------------------===//
// Superinstruction seams
//===----------------------------------------------------------------------===//
// The threaded engine fuses cmp+branch, LdI+LdIH, and AddI+load/store
// pairs. These cases pin the architectural behavior at the seams of a
// pair; on the switch engine they are ordinary programs, so any backend
// difference is a test failure on exactly one parameterization.

TEST_P(VmExecTest, UnalignedPcAfterFusedBranch) {
  H.emit(Opcode::LdI, 2, 0, 0, 1);
  H.emit(Opcode::Seq, 3, 2, 2);      // r3 = 1 (fusible with the branch)
  H.emit(Opcode::Bnez, 0, 3, 0, 12); // taken: 16 + 12 = 28, misaligned
  H.emit(Opcode::Halt);
  ExecResult R = H.run();
  EXPECT_EQ(R.Kind, TrapKind::UnalignedPc);
  EXPECT_EQ(R.Pc, 28u);
  EXPECT_EQ(R.InstructionsRetired, 3u); // the branch itself retired
  EXPECT_EQ(H.RegsAfter[3], 1u);        // and the cmp wrote its result
}

TEST_P(VmExecTest, BudgetExhaustionOnSuperinstructionBoundary) {
  H.emit(Opcode::LdI, 2, 0, 0, 5);
  H.emit(Opcode::Seq, 3, 2, 2);     // retires as instruction #2
  H.emit(Opcode::Bnez, 0, 3, 0, 8); // would retire as #3
  H.emit(Opcode::Halt);
  ExecResult R = H.run(nullptr, 2);
  EXPECT_EQ(R.Kind, TrapKind::BudgetExhausted);
  EXPECT_EQ(R.InstructionsRetired, 2u); // exactly the budget, never 3
  EXPECT_EQ(R.Pc, 16u);                 // stopped at the branch
  EXPECT_EQ(H.RegsAfter[3], 1u);        // cmp half executed
}

TEST_P(VmExecTest, FusedPairsRetireArchitecturalCount) {
  H.emit(Opcode::LdI, 1, 0, 0, 0x11111111);
  H.emit(Opcode::LdIH, 1, 0, 0, 0x2222);
  H.emit(Opcode::Halt);
  ExecResult R = H.run();
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(R.InstructionsRetired, 3u); // pre-fusion count
  EXPECT_EQ(R.ReturnValue, 0x222211111111ull);

  // Budget 1 splits the pair: only the LdI half runs.
  ExecResult Partial = H.run(nullptr, 1);
  EXPECT_EQ(Partial.Kind, TrapKind::BudgetExhausted);
  EXPECT_EQ(Partial.InstructionsRetired, 1u);
  EXPECT_EQ(Partial.Pc, 8u);
  EXPECT_EQ(H.RegsAfter[1], 0x11111111u);
}

TEST_P(VmExecTest, FusedMemoryFaultReportsSecondSlot) {
  H.emit(Opcode::LdI, 2, 0, 0, 1 << 16);
  H.emit(Opcode::AddI, 4, 2, 0, 0); // fusible with the load below
  H.emit(Opcode::LdD, 5, 4, 0, 0);  // out of bounds: faults
  H.emit(Opcode::Halt);
  ExecResult R = H.run();
  EXPECT_EQ(R.Kind, TrapKind::MemoryFault);
  EXPECT_EQ(R.Pc, 16u);                 // the load, not the AddI
  EXPECT_EQ(R.InstructionsRetired, 3u); // both halves retired
  EXPECT_EQ(H.RegsAfter[4], 1u << 16);  // AddI half committed
}

TEST_P(VmExecTest, IllegalOpcodeInSlotAfterPreDecode) {
  // A store rewrites an already-decoded downstream slot with zeros; the
  // engine must execute the new (illegal) bytes, not its stale decode.
  H.emit(Opcode::LdI, 2, 0, 0, 40); // address of the Halt slot
  H.emit(Opcode::StD, 0, 2, 0, 0);  // zero out slot 5
  H.emit(Opcode::Nop);
  H.emit(Opcode::Nop);
  H.emit(Opcode::Nop);
  H.emit(Opcode::Halt); // slot 5: becomes Illegal mid-run
  ExecResult R = H.run();
  EXPECT_EQ(R.Kind, TrapKind::IllegalInstruction);
  EXPECT_EQ(R.Pc, 40u);
  EXPECT_EQ(R.InstructionsRetired, 6u);
}

TEST_P(VmExecTest, RestoreWriteInvalidationMidRun) {
  // A tcall handler rewriting code mid-run is exactly how SGXElide
  // restores elided functions: the instruction after the tcall must be
  // fetched from the restored bytes.
  H.emit(Opcode::Tcall, 0, 0, 0, 0);
  H.emit(Opcode::Nop);
  H.emit(Opcode::LdI, 1, 0, 0, 111); // slot 2: replaced by the handler
  H.emit(Opcode::Halt);
  ExecResult R = H.run([](Vm &M) {
    M.setTcallHandler([](uint32_t, Vm &V) -> Expected<uint64_t> {
      Bytes Patch;
      emitInstruction(Patch, {Opcode::LdI, 1, 0, 0, 222});
      if (Error E = V.writeBytes(16, Patch))
        return E;
      return 0;
    });
  });
  ASSERT_TRUE(R.halted()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 222u);
}

TEST_P(VmExecTest, BranchIntoMiddleOfFusedPair) {
  // Jumping to the second half of a fusible pair must execute that
  // instruction standalone.
  H.emit(Opcode::Jmp, 0, 0, 0, 24);  // to slot 3 (the LdIH)
  H.emit(Opcode::LdI, 1, 0, 0, 0x1); // slot 1 \ fusible pair, skipped
  H.emit(Opcode::LdIH, 1, 0, 0, 2);  // slot 2 / first half
  H.emit(Opcode::LdIH, 1, 0, 0, 3);  // slot 3: jump target
  H.emit(Opcode::Halt);
  ExecResult R = H.run();
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(R.ReturnValue, 0x300000000ull);
}

//===----------------------------------------------------------------------===//
// Host calls
//===----------------------------------------------------------------------===//

TEST_P(VmExecTest, TcallDispatchesAndReturnsInR1) {
  H.emit(Opcode::LdI, 1, 0, 0, 20);
  H.emit(Opcode::Tcall, 0, 0, 0, 3);
  H.emit(Opcode::Halt);
  ExecResult R = H.run([](Vm &M) {
    M.setTcallHandler([](uint32_t Index, Vm &V) -> Expected<uint64_t> {
      EXPECT_EQ(Index, 3u);
      return V.reg(1) * 2 + 2;
    });
  });
  ASSERT_TRUE(R.halted());
  EXPECT_EQ(R.ReturnValue, 42u);
}

TEST_P(VmExecTest, MissingOcallHandlerFaults) {
  H.emit(Opcode::Ocall, 0, 0, 0, 0);
  ExecResult R = H.run();
  EXPECT_EQ(R.Kind, TrapKind::HandlerFault);
}

TEST_P(VmExecTest, HandlerErrorBecomesFault) {
  H.emit(Opcode::Tcall, 0, 0, 0, 9);
  ExecResult R = H.run([](Vm &M) {
    M.setTcallHandler([](uint32_t, Vm &) -> Expected<uint64_t> {
      return makeError("deliberate");
    });
  });
  EXPECT_EQ(R.Kind, TrapKind::HandlerFault);
  EXPECT_NE(R.Message.find("deliberate"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Disassembler
//===----------------------------------------------------------------------===//

TEST(DisassemblerTest, FormatsCommonInstructions) {
  EXPECT_EQ(disassembleInstruction({Opcode::Add, 1, 2, 3, 0}, 0),
            "add    r1, r2, r3");
  EXPECT_EQ(disassembleInstruction({Opcode::LdI, 4, 0, 0, -7}, 0),
            "ldi    r4, -7");
  EXPECT_EQ(disassembleInstruction({Opcode::LdD, 2, 29, 0, 16}, 0),
            "ldd    r2, [r29+16]");
  EXPECT_EQ(disassembleInstruction({Opcode::StB, 0, 5, 6, -1}, 0),
            "stb    [r5-1], r6");
  EXPECT_EQ(disassembleInstruction({Opcode::Call, 0, 0, 0, 64}, 0x100),
            "call   0x140");
  EXPECT_EQ(disassembleInstruction({Opcode::Tcall, 0, 0, 0, 5}, 0),
            "tcall  #5");
}

TEST(DisassemblerTest, CountsValidSlots) {
  Bytes Code;
  emitInstruction(Code, {Opcode::Add, 1, 2, 3, 0});
  emitInstruction(Code, {Opcode::Illegal, 0, 0, 0, 0});
  emitInstruction(Code, {Opcode::Halt, 0, 0, 0, 0});
  EXPECT_EQ(countValidInstructionSlots(Code), 2u);
}

TEST(DisassemblerTest, DecodeRegionYieldsPcsAndDropsRaggedTail) {
  Bytes Code;
  emitInstruction(Code, {Opcode::Nop, 0, 0, 0, 0});
  emitInstruction(Code, {Opcode::Jmp, 0, 0, 0, -8});
  Code.resize(Code.size() + 5, 0xCC); // Partial slot: not decodable.
  std::vector<DecodedSlot> Slots = decodeRegion(Code, 0x2000);
  ASSERT_EQ(Slots.size(), 2u);
  EXPECT_EQ(Slots[0].Pc, 0x2000u);
  EXPECT_TRUE(Slots[0].Valid);
  EXPECT_EQ(Slots[1].Pc, 0x2008u);
  EXPECT_EQ(Slots[1].I.Op, Opcode::Jmp);
}

TEST(DisassemblerTest, StructuredDecodePredicates) {
  EXPECT_TRUE(isConditionalBranch(Opcode::Beqz));
  EXPECT_TRUE(isConditionalBranch(Opcode::Bnez));
  EXPECT_FALSE(isConditionalBranch(Opcode::Jmp));
  EXPECT_TRUE(isLoadOpcode(Opcode::LdBU));
  EXPECT_TRUE(isLoadOpcode(Opcode::LdD));
  EXPECT_FALSE(isLoadOpcode(Opcode::LdI)); // Immediate, not memory.
  EXPECT_TRUE(isStoreOpcode(Opcode::StD));
  EXPECT_FALSE(isStoreOpcode(Opcode::LdD));
  EXPECT_TRUE(endsStraightLine(Opcode::Ret));
  EXPECT_TRUE(endsStraightLine(Opcode::Illegal));
  EXPECT_FALSE(endsStraightLine(Opcode::Call));
  EXPECT_FALSE(endsStraightLine(Opcode::Beqz));
}

TEST(DisassemblerTest, DirectTargetResolvesPcRelativeTransfers) {
  Instruction Jmp{Opcode::Jmp, 0, 0, 0, 0x40};
  std::optional<uint64_t> T = directTarget(Jmp, 0x1000);
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(*T, 0x1040u);
  Instruction Back{Opcode::Bnez, 0, 1, 0, -16};
  T = directTarget(Back, 0x1020);
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(*T, 0x1010u);
  // Indirect and non-transfer instructions have no static target.
  EXPECT_FALSE(directTarget({Opcode::CallR, 0, 1, 0, 0}, 0).has_value());
  EXPECT_FALSE(directTarget({Opcode::Add, 1, 2, 3, 0}, 0).has_value());
}

} // namespace
