//===- tests/SgxTest.cpp - SGX device model unit tests -----------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "elc/Compiler.h"
#include "elide/TrustedLib.h"
#include "sgx/Attestation.h"
#include "sgx/EnclaveLoader.h"

#include <gtest/gtest.h>

using namespace elide;
using namespace elide::sgx;

namespace {

Ed25519KeyPair testVendor(uint64_t Seed = 99) {
  Drbg Rng(Seed);
  Ed25519Seed S{};
  Rng.fill(MutableBytesView(S.data(), 32));
  return ed25519KeyPairFromSeed(S);
}

/// Builds a tiny enclave through the raw builder interface.
Expected<std::unique_ptr<Enclave>> buildTinyEnclave(SgxDevice &Device,
                                                    uint64_t Attributes,
                                                    BytesView PageContent) {
  SgxDevice::Builder B(Device, 0x10000);
  if (Error E = B.addPage(0x1000, PermRead | PermExec, PageContent))
    return E;
  if (Error E = B.addPage(0x2000, PermRead | PermWrite, {}))
    return E;
  SigStruct Sig =
      SigStruct::sign(testVendor(), B.currentMeasurement(), Attributes);
  return B.init(Sig);
}

//===----------------------------------------------------------------------===//
// Measurement (ECREATE / EADD / EEXTEND)
//===----------------------------------------------------------------------===//

TEST(MeasurementTest, DeterministicAcrossDevices) {
  Bytes Page(100, 0x5a);
  SgxDevice D1(1), D2(2);
  SgxDevice::Builder B1(D1, 0x10000), B2(D2, 0x10000);
  ASSERT_FALSE(static_cast<bool>(B1.addPage(0x1000, PermRead, Page)));
  ASSERT_FALSE(static_cast<bool>(B2.addPage(0x1000, PermRead, Page)));
  EXPECT_EQ(B1.currentMeasurement(), B2.currentMeasurement());
}

TEST(MeasurementTest, SensitiveToContentPermsAddressAndSize) {
  auto MeasureWith = [](uint64_t Size, uint64_t VAddr, uint8_t Perms,
                        uint8_t Fill) {
    SgxDevice D(1);
    SgxDevice::Builder B(D, Size);
    Bytes Page(64, Fill);
    EXPECT_FALSE(static_cast<bool>(B.addPage(VAddr, Perms, Page)));
    return B.currentMeasurement();
  };
  Measurement Base = MeasureWith(0x10000, 0x1000, PermRead, 0xaa);
  EXPECT_NE(Base, MeasureWith(0x10000, 0x1000, PermRead, 0xab));
  EXPECT_NE(Base, MeasureWith(0x10000, 0x1000, PermRead | PermWrite, 0xaa));
  EXPECT_NE(Base, MeasureWith(0x10000, 0x2000, PermRead, 0xaa));
  EXPECT_NE(Base, MeasureWith(0x20000, 0x1000, PermRead, 0xaa));
}

TEST(MeasurementTest, BuilderValidatesPages) {
  SgxDevice D(1);
  SgxDevice::Builder B(D, 0x4000);
  EXPECT_TRUE(static_cast<bool>(B.addPage(0x1004, PermRead, {})))
      << "unaligned address must be rejected";
  EXPECT_TRUE(static_cast<bool>(B.addPage(0x4000, PermRead, {})))
      << "page outside the enclave range must be rejected";
  EXPECT_FALSE(static_cast<bool>(B.addPage(0x1000, PermRead, {})));
  EXPECT_TRUE(static_cast<bool>(B.addPage(0x1000, PermRead, {})))
      << "double-add must be rejected";
  EXPECT_TRUE(static_cast<bool>(B.addPage(0x2000, PermRead,
                                          Bytes(4097, 0))))
      << "oversized content must be rejected";
}

//===----------------------------------------------------------------------===//
// EINIT
//===----------------------------------------------------------------------===//

TEST(EinitTest, AcceptsMatchingSignedMeasurement) {
  SgxDevice D(1);
  Expected<std::unique_ptr<Enclave>> E =
      buildTinyEnclave(D, AttrDebug, Bytes(16, 1));
  ASSERT_TRUE(static_cast<bool>(E)) << E.errorMessage();
  EXPECT_TRUE((*E)->isDebug());
}

TEST(EinitTest, RejectsWrongMeasurement) {
  SgxDevice D(1);
  SgxDevice::Builder B(D, 0x10000);
  ASSERT_FALSE(static_cast<bool>(B.addPage(0x1000, PermRead, Bytes(8, 7))));
  Measurement Wrong{};
  SigStruct Sig = SigStruct::sign(testVendor(), Wrong, 0);
  Expected<std::unique_ptr<Enclave>> E = B.init(Sig);
  ASSERT_FALSE(static_cast<bool>(E));
  EXPECT_NE(E.errorMessage().find("measurement"), std::string::npos);
}

TEST(EinitTest, RejectsTamperedAttributes) {
  // Attributes are covered by the vendor signature: flipping them after
  // signing must fail.
  SgxDevice D(1);
  SgxDevice::Builder B(D, 0x10000);
  ASSERT_FALSE(static_cast<bool>(B.addPage(0x1000, PermRead, Bytes(8, 7))));
  SigStruct Sig = SigStruct::sign(testVendor(), B.currentMeasurement(),
                                  AttrDebug);
  Sig.Attributes |= AttrSgx2DynamicPerms; // privilege escalation attempt
  Expected<std::unique_ptr<Enclave>> E = B.init(Sig);
  ASSERT_FALSE(static_cast<bool>(E));
}

TEST(EinitTest, MrSignerDerivesFromVendorKey) {
  Ed25519KeyPair V1 = testVendor(1), V2 = testVendor(2);
  Measurement M{};
  SigStruct S1 = SigStruct::sign(V1, M, 0);
  SigStruct S2 = SigStruct::sign(V2, M, 0);
  EXPECT_NE(S1.mrSigner(), S2.mrSigner());
  EXPECT_EQ(S1.mrSigner(), SigStruct::sign(V1, M, 1).mrSigner());
}

TEST(EinitTest, SigStructSerializationRoundTrip) {
  SigStruct S = SigStruct::sign(testVendor(), Measurement{}, AttrDebug);
  Expected<SigStruct> Back = SigStruct::deserialize(S.serialize());
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(Back->MrEnclave, S.MrEnclave);
  EXPECT_EQ(Back->Attributes, S.Attributes);
  EXPECT_EQ(Back->VendorKey, S.VendorKey);
  EXPECT_TRUE(Back->verify());
}

//===----------------------------------------------------------------------===//
// Page permissions
//===----------------------------------------------------------------------===//

TEST(PagePermTest, WriteToReadOnlyPageFaults) {
  SgxDevice D(1);
  Expected<std::unique_ptr<Enclave>> E =
      buildTinyEnclave(D, AttrDebug, Bytes(16, 1));
  ASSERT_TRUE(static_cast<bool>(E));
  // 0x1000 is R+X (no W): stores must fault; 0x2000 is RW: stores work.
  Bytes Data = {1, 2, 3};
  EXPECT_TRUE(static_cast<bool>((*E)->writeMemory(0x1000, Data)));
  EXPECT_FALSE(static_cast<bool>((*E)->writeMemory(0x2000, Data)));
  Expected<Bytes> Back = (*E)->readMemory(0x2000, 3);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(*Back, Data);
}

TEST(PagePermTest, UnmappedAccessFaults) {
  SgxDevice D(1);
  Expected<std::unique_ptr<Enclave>> E =
      buildTinyEnclave(D, AttrDebug, Bytes(16, 1));
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_TRUE(static_cast<bool>((*E)->readMemory(0x5000, 8).takeError()));
}

TEST(PagePermTest, Sgx1ForbidsPermissionChanges) {
  SgxDevice D(1);
  Expected<std::unique_ptr<Enclave>> E =
      buildTinyEnclave(D, AttrDebug, Bytes(16, 1));
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_TRUE(static_cast<bool>(
      (*E)->extendPagePermissions(0x1000, PermWrite)));
  EXPECT_TRUE(static_cast<bool>(
      (*E)->restrictPagePermissions(0x2000, PermWrite)));
}

TEST(PagePermTest, Sgx2AllowsExtendAndRestrict) {
  SgxDevice D(1);
  Expected<std::unique_ptr<Enclave>> E = buildTinyEnclave(
      D, AttrDebug | AttrSgx2DynamicPerms, Bytes(16, 1));
  ASSERT_TRUE(static_cast<bool>(E));
  ASSERT_FALSE(static_cast<bool>(
      (*E)->extendPagePermissions(0x1000, PermWrite)));
  Bytes Data = {7};
  EXPECT_FALSE(static_cast<bool>((*E)->writeMemory(0x1000, Data)));
  ASSERT_FALSE(static_cast<bool>(
      (*E)->restrictPagePermissions(0x1000, PermWrite)));
  EXPECT_TRUE(static_cast<bool>((*E)->writeMemory(0x1000, Data)));
}

//===----------------------------------------------------------------------===//
// Sealing
//===----------------------------------------------------------------------===//

TEST(SealingTest, RoundTripWithAad) {
  SgxDevice D(1);
  Expected<std::unique_ptr<Enclave>> E =
      buildTinyEnclave(D, AttrDebug, Bytes(16, 1));
  ASSERT_TRUE(static_cast<bool>(E));
  Bytes Secret = bytesOfString("the cake is a lie");
  Bytes Aad = bytesOfString("v1");
  Expected<Bytes> Blob = (*E)->seal(SealPolicy::MrEnclave, Secret, Aad);
  ASSERT_TRUE(static_cast<bool>(Blob));
  Expected<Unsealed> Back = (*E)->unseal(*Blob);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(Back->Plaintext, Secret);
  EXPECT_EQ(Back->Aad, Aad);
}

TEST(SealingTest, TamperedBlobRejected) {
  SgxDevice D(1);
  Expected<std::unique_ptr<Enclave>> E =
      buildTinyEnclave(D, AttrDebug, Bytes(16, 1));
  ASSERT_TRUE(static_cast<bool>(E));
  Expected<Bytes> Blob =
      (*E)->seal(SealPolicy::MrEnclave, bytesOfString("x"), {});
  ASSERT_TRUE(static_cast<bool>(Blob));
  Bytes Bad = *Blob;
  Bad.back() ^= 1;
  EXPECT_FALSE(static_cast<bool>((*E)->unseal(Bad)));
  EXPECT_FALSE(static_cast<bool>((*E)->unseal(Bytes(10, 0))));
}

TEST(SealingTest, MrEnclavePolicyBindsToExactEnclave) {
  SgxDevice D(1);
  Expected<std::unique_ptr<Enclave>> E1 =
      buildTinyEnclave(D, AttrDebug, Bytes(16, 1));
  Expected<std::unique_ptr<Enclave>> E2 =
      buildTinyEnclave(D, AttrDebug, Bytes(16, 2)); // different code
  ASSERT_TRUE(static_cast<bool>(E1));
  ASSERT_TRUE(static_cast<bool>(E2));
  Expected<Bytes> Blob =
      (*E1)->seal(SealPolicy::MrEnclave, bytesOfString("s"), {});
  ASSERT_TRUE(static_cast<bool>(Blob));
  EXPECT_FALSE(static_cast<bool>((*E2)->unseal(*Blob)))
      << "a different enclave must not unseal MRENCLAVE-policy data";
}

TEST(SealingTest, MrSignerPolicySharesAcrossVendorEnclaves) {
  SgxDevice D(1);
  Expected<std::unique_ptr<Enclave>> E1 =
      buildTinyEnclave(D, AttrDebug, Bytes(16, 1));
  Expected<std::unique_ptr<Enclave>> E2 =
      buildTinyEnclave(D, AttrDebug, Bytes(16, 2));
  ASSERT_TRUE(static_cast<bool>(E1));
  ASSERT_TRUE(static_cast<bool>(E2));
  Expected<Bytes> Blob =
      (*E1)->seal(SealPolicy::MrSigner, bytesOfString("shared"), {});
  ASSERT_TRUE(static_cast<bool>(Blob));
  Expected<Unsealed> Back = (*E2)->unseal(*Blob);
  ASSERT_TRUE(static_cast<bool>(Back))
      << "same-vendor enclave must unseal MRSIGNER-policy data";
  EXPECT_EQ(stringOfBytes(Back->Plaintext), "shared");
}

TEST(SealingTest, OtherDeviceCannotUnseal) {
  SgxDevice D1(1), D2(2);
  Expected<std::unique_ptr<Enclave>> E1 =
      buildTinyEnclave(D1, AttrDebug, Bytes(16, 1));
  Expected<std::unique_ptr<Enclave>> E2 =
      buildTinyEnclave(D2, AttrDebug, Bytes(16, 1)); // identical enclave!
  ASSERT_TRUE(static_cast<bool>(E1));
  ASSERT_TRUE(static_cast<bool>(E2));
  Expected<Bytes> Blob =
      (*E1)->seal(SealPolicy::MrEnclave, bytesOfString("s"), {});
  ASSERT_TRUE(static_cast<bool>(Blob));
  EXPECT_FALSE(static_cast<bool>((*E2)->unseal(*Blob)))
      << "seal keys must be device-bound";
}

//===----------------------------------------------------------------------===//
// Reports and quotes
//===----------------------------------------------------------------------===//

TEST(AttestationTest, LocalReportVerifiesOnlyForTarget) {
  SgxDevice D(1);
  Expected<std::unique_ptr<Enclave>> A =
      buildTinyEnclave(D, AttrDebug, Bytes(16, 1));
  Expected<std::unique_ptr<Enclave>> B =
      buildTinyEnclave(D, AttrDebug, Bytes(16, 2));
  ASSERT_TRUE(static_cast<bool>(A));
  ASSERT_TRUE(static_cast<bool>(B));

  ReportData Rd{};
  Rd[0] = 42;
  Report R = (*A)->createReport(TargetInfo{(*B)->mrEnclave()}, Rd);
  EXPECT_TRUE((*B)->verifyReportForMe(R));
  EXPECT_FALSE((*A)->verifyReportForMe(R)) << "wrong target";

  Report Tampered = R;
  Tampered.Body.Data[0] = 43;
  EXPECT_FALSE((*B)->verifyReportForMe(Tampered));
}

TEST(AttestationTest, QuoteChainVerifies) {
  SgxDevice D(1);
  AttestationAuthority Authority(5);
  QuotingEnclave Qe(D, Authority);
  Expected<std::unique_ptr<Enclave>> E =
      buildTinyEnclave(D, AttrDebug, Bytes(16, 1));
  ASSERT_TRUE(static_cast<bool>(E));

  ReportData Rd{};
  Report R = (*E)->createReport(Qe.targetInfo(), Rd);
  Expected<Quote> Q = Qe.quoteReport(R);
  ASSERT_TRUE(static_cast<bool>(Q)) << Q.errorMessage();

  Expected<ReportBody> Body =
      AttestationAuthority::verifyQuote(*Q, Authority.publicKey());
  ASSERT_TRUE(static_cast<bool>(Body)) << Body.errorMessage();
  EXPECT_EQ(Body->MrEnclave, (*E)->mrEnclave());
}

TEST(AttestationTest, QeRejectsForeignReports) {
  SgxDevice D1(1), D2(2);
  AttestationAuthority Authority(5);
  QuotingEnclave Qe1(D1, Authority);
  Expected<std::unique_ptr<Enclave>> E =
      buildTinyEnclave(D2, AttrDebug, Bytes(16, 1)); // other device!
  ASSERT_TRUE(static_cast<bool>(E));
  Report R = (*E)->createReport(Qe1.targetInfo(), ReportData{});
  EXPECT_FALSE(static_cast<bool>(Qe1.quoteReport(R)))
      << "reports from another device must not be quotable";
}

TEST(AttestationTest, TamperedQuoteFailsVerification) {
  SgxDevice D(1);
  AttestationAuthority Authority(5);
  QuotingEnclave Qe(D, Authority);
  Expected<std::unique_ptr<Enclave>> E =
      buildTinyEnclave(D, AttrDebug, Bytes(16, 1));
  ASSERT_TRUE(static_cast<bool>(E));
  Expected<Quote> Q =
      Qe.quoteReport((*E)->createReport(Qe.targetInfo(), ReportData{}));
  ASSERT_TRUE(static_cast<bool>(Q));

  Quote Bad = *Q;
  Bad.Body.MrEnclave[0] ^= 1;
  EXPECT_FALSE(static_cast<bool>(
      AttestationAuthority::verifyQuote(Bad, Authority.publicKey())));

  Quote BadKey = *Q;
  BadKey.AttestationKey[0] ^= 1;
  EXPECT_FALSE(static_cast<bool>(
      AttestationAuthority::verifyQuote(BadKey, Authority.publicKey())));

  // Serialization round trip.
  Expected<Quote> Back = Quote::deserialize(Q->serialize());
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_TRUE(static_cast<bool>(
      AttestationAuthority::verifyQuote(*Back, Authority.publicKey())));
}

//===----------------------------------------------------------------------===//
// EPC eviction (EWB/ELDU)
//===----------------------------------------------------------------------===//

TEST(EpcPagingTest, EvictThenReloadRestoresContents) {
  SgxDevice D(1);
  Expected<std::unique_ptr<Enclave>> E =
      buildTinyEnclave(D, AttrDebug, Bytes(16, 1));
  ASSERT_TRUE(static_cast<bool>(E));
  Bytes Data = bytesOfString("resident page data");
  ASSERT_FALSE(static_cast<bool>((*E)->writeMemory(0x2000, Data)));

  Expected<Bytes> Blob = (*E)->evictPage(0x2000);
  ASSERT_TRUE(static_cast<bool>(Blob));
  // While evicted, accesses fault.
  EXPECT_TRUE(static_cast<bool>((*E)->readMemory(0x2000, 4).takeError()));
  // The blob is ciphertext: the plaintext must not appear in it.
  std::string BlobStr = stringOfBytes(*Blob);
  EXPECT_EQ(BlobStr.find("resident page"), std::string::npos);

  ASSERT_FALSE(static_cast<bool>((*E)->reloadPage(0x2000, *Blob)));
  Expected<Bytes> Back = (*E)->readMemory(0x2000, Data.size());
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(*Back, Data);
}

TEST(EpcPagingTest, TamperedOrMisdirectedBlobRejected) {
  SgxDevice D(1);
  Expected<std::unique_ptr<Enclave>> E =
      buildTinyEnclave(D, AttrDebug, Bytes(16, 1));
  ASSERT_TRUE(static_cast<bool>(E));
  Expected<Bytes> Blob = (*E)->evictPage(0x2000);
  ASSERT_TRUE(static_cast<bool>(Blob));

  Bytes Tampered = *Blob;
  Tampered[100] ^= 1;
  EXPECT_TRUE(static_cast<bool>((*E)->reloadPage(0x2000, Tampered)));

  // Cannot reload at a different address (AAD binds the vaddr).
  EXPECT_TRUE(static_cast<bool>((*E)->reloadPage(0x1000, *Blob)));

  // Untampered blob still loads.
  EXPECT_FALSE(static_cast<bool>((*E)->reloadPage(0x2000, *Blob)));
}

//===----------------------------------------------------------------------===//
// Loader
//===----------------------------------------------------------------------===//

TEST(LoaderTest, OfflineMeasurementMatchesLoad) {
  // The vendor signs offline; the device measures at load. They must
  // agree or nothing ever launches.
  Expected<elc::CompileResult> App = elc::compileEnclave(
      ElideTrustedLib::runtimeSources(), ElideTrustedLib::callRegistry());
  ASSERT_TRUE(static_cast<bool>(App)) << App.errorMessage();

  EnclaveLayout Layout;
  Expected<Measurement> Offline = measureEnclaveImage(App->ElfFile, Layout);
  ASSERT_TRUE(static_cast<bool>(Offline));

  SgxDevice D(1);
  SigStruct Sig = SigStruct::sign(testVendor(), *Offline, AttrDebug);
  Expected<std::unique_ptr<Enclave>> E =
      loadEnclave(D, App->ElfFile, Sig, Layout);
  ASSERT_TRUE(static_cast<bool>(E)) << E.errorMessage();
  EXPECT_EQ((*E)->mrEnclave(), *Offline);
}

TEST(LoaderTest, LayoutChangesChangeMeasurement) {
  Expected<elc::CompileResult> App = elc::compileEnclave(
      ElideTrustedLib::runtimeSources(), ElideTrustedLib::callRegistry());
  ASSERT_TRUE(static_cast<bool>(App));
  EnclaveLayout A, B;
  B.HeapSize = A.HeapSize * 2;
  Expected<Measurement> Ma = measureEnclaveImage(App->ElfFile, A);
  Expected<Measurement> Mb = measureEnclaveImage(App->ElfFile, B);
  ASSERT_TRUE(static_cast<bool>(Ma));
  ASSERT_TRUE(static_cast<bool>(Mb));
  EXPECT_NE(*Ma, *Mb) << "heap pages are EADDed and therefore measured";
}

} // namespace
