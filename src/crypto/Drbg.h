//===- crypto/Drbg.h - Deterministic random bit generator ------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ChaCha20-based deterministic random bit generator. Stands in for both
/// RDRAND inside the device model and `sgx_read_rand` in enclave code.
/// Deterministic seeding keeps every experiment in this repository
/// reproducible; `Drbg::system()` mixes in OS entropy for the tools.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_CRYPTO_DRBG_H
#define SGXELIDE_CRYPTO_DRBG_H

#include "support/Bytes.h"

#include <array>

namespace elide {

/// ChaCha20-keystream DRBG.
class Drbg {
public:
  /// Seeds from 32 bytes of keying material (shorter seeds are hashed up).
  explicit Drbg(BytesView Seed);

  /// Seeds deterministically from a 64-bit value (tests, benches).
  explicit Drbg(uint64_t Seed);

  /// Seeds from the operating system's entropy source.
  static Drbg system();

  /// Fills \p Out with random bytes.
  void fill(MutableBytesView Out);

  /// Returns \p N random bytes.
  Bytes bytes(size_t N);

  /// Returns a uniformly distributed 64-bit value.
  uint64_t next64();

  /// Returns a uniformly distributed value in [0, Bound) (Bound > 0).
  uint64_t nextBelow(uint64_t Bound);

private:
  void refill();

  std::array<uint8_t, 32> Key;
  uint64_t Counter = 0;
  uint8_t Block[64];
  size_t BlockUsed = 64;
};

} // namespace elide

#endif // SGXELIDE_CRYPTO_DRBG_H
