//===- tests/fuzz/FuzzCommon.h - Shared driver plumbing ---------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one macro every fuzz driver needs: an assertion that works in both
/// execution modes. Under libFuzzer there is no gtest, so a violated
/// property must abort (libFuzzer then saves the input); under the gtest
/// replay binary the abort fails the test with the message on stderr.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_TESTS_FUZZ_FUZZCOMMON_H
#define SGXELIDE_TESTS_FUZZ_FUZZCOMMON_H

#include <cstdio>
#include <cstdlib>

/// Property check valid in both libFuzzer and gtest modes.
#define FUZZ_ASSERT(Cond)                                                      \
  do {                                                                         \
    if (!(Cond)) {                                                             \
      std::fprintf(stderr, "FUZZ_ASSERT failed: %s at %s:%d\n", #Cond,         \
                   __FILE__, __LINE__);                                        \
      std::abort();                                                            \
    }                                                                          \
  } while (0)

#endif // SGXELIDE_TESTS_FUZZ_FUZZCOMMON_H
