//===- tests/framework/Corpus.h - Seed corpus loading and reproducers -------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Access to the checked-in seed corpora under `tests/fuzz/corpus/<target>/`.
/// The replay suite runs every entry through its target on plain ctest
/// builds (and under sanitizers in CI), so each corpus doubles as a
/// regression suite: when the fuzzer finds a crash, the shrunk input is
/// checked in here and replays forever after.
///
/// The directory root resolves, in order: the `ELIDE_CORPUS_DIR`
/// environment variable, then the compiled-in source-tree path
/// (`ELIDE_CORPUS_DEFAULT`, set by CMake).
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_TESTS_FRAMEWORK_CORPUS_H
#define SGXELIDE_TESTS_FRAMEWORK_CORPUS_H

#include "support/Bytes.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace elide {
namespace fuzz {

/// One corpus file: its basename (for diagnostics) and contents.
struct CorpusEntry {
  std::string Name;
  Bytes Data;
};

/// The corpus root directory (no trailing slash).
std::string corpusRoot();

/// Loads every file under `<root>/<Target>/`, sorted by name for
/// deterministic replay order. Fails when the directory is missing --
/// a target without a corpus is a harness bug, not an empty success.
Expected<std::vector<CorpusEntry>> loadCorpus(const std::string &Target);

/// Writes \p Data as `<root>/<Target>/<Name>`, creating the directory.
Error writeCorpusEntry(const std::string &Target, const std::string &Name,
                       BytesView Data);

/// Writes a shrunk crashing input as `crash-<fnv1a hash>` under the
/// target's corpus directory and returns the path (for the developer to
/// inspect, name properly, and check in).
Expected<std::string> writeReproducer(const std::string &Target,
                                      BytesView Data);

} // namespace fuzz
} // namespace elide

#endif // SGXELIDE_TESTS_FRAMEWORK_CORPUS_H
