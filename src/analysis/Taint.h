//===- analysis/Taint.h - Worklist taint engine over the SVM CFG -----------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A forward taint dataflow over `analysis::Cfg`. Sources are the secret
/// ranges: any load executed *inside* an elided/restored region produces
/// a secret value (the region's embedded constants and working set are
/// exactly what elision hides), as does a load whose address constant-
/// folds into a secret range (key material reads from surviving code).
/// Sp-relative loads are exempt from the ambient rule -- they reload
/// spilled locals/arguments, and flagging every spill slot as secret
/// would drown real leaks. Taint propagates through the ALU; `ldi`
/// kills it.
///
/// Sinks are where secrets become observable to the paper's adversary:
/// branch conditions and memory addresses (cache/timing side channels),
/// ocall argument registers (explicit exfiltration surface), indirect
/// call targets, and the SgxPectre shape -- a tainted-load value forming
/// the address of a second load shortly after a conditional branch.
///
/// The engine is a heuristic, not a verifier: calls flow into the callee
/// and across (modelling the return) with the caller's register state,
/// callee effects on registers are ignored, and memory cells are not
/// tracked. That trades soundness for zero-noise on the repo's sanitized
/// images while still catching every fixture shape the checkers gate on.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_ANALYSIS_TAINT_H
#define SGXELIDE_ANALYSIS_TAINT_H

#include "analysis/Cfg.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace elide {
namespace analysis {

struct TaintOptions {
  /// Absolute [lo, hi) address ranges holding secret (elided/restored)
  /// code and data.
  std::vector<std::pair<uint64_t, uint64_t>> SecretRanges;

  /// Instruction distance after a conditional branch within which a
  /// dependent double-load counts as a speculative gadget.
  unsigned SpecWindow = 24;

  /// Hard cap on instruction transfers (hostile-input termination
  /// backstop on top of the monotone lattice).
  size_t MaxSteps = 1u << 18;
};

enum class SinkKind {
  Branch,            ///< Beqz/Bnez condition is tainted (AUD501).
  MemoryAddress,     ///< Load/store address register is tainted (AUD502).
  CompareLoopBranch, ///< Tainted compare result branches inside a CFG
                     ///< cycle: the early-exit memcmp shape (AUD503).
  OcallArg,          ///< Ocall with a tainted r1..r4 (AUD511).
  SpecDoubleLoad,    ///< Tainted load value forms a second load's address
                     ///< within the speculation window (AUD521).
  IndirectTarget,    ///< CallR through a tainted register (AUD522).
};

struct TaintSink {
  SinkKind Kind = SinkKind::Branch;
  uint64_t Pc = 0;       ///< Absolute pc of the sink instruction.
  uint8_t Reg = 0;       ///< Register carrying the taint at the sink.
  uint64_t OriginPc = 0; ///< Pc of the load that introduced the taint
                         ///< (0 when unknown).
};

struct TaintResult {
  /// Deduplicated by (kind, pc), ordered by pc then kind.
  std::vector<TaintSink> Sinks;
  bool Truncated = false; ///< MaxSteps hit; results are partial.
  size_t Steps = 0;
};

/// Runs the taint fixpoint over every root-reachable block of \p G.
TaintResult runTaint(const Cfg &G, const TaintOptions &Opts);

} // namespace analysis
} // namespace elide

#endif // SGXELIDE_ANALYSIS_TAINT_H
