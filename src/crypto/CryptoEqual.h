//===- crypto/CryptoEqual.h - Constant-time comparison ---------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one constant-time equality primitive every tag, MAC, signature,
/// and point comparison routes through. `std::memcmp` exits on the first
/// differing byte, so the comparison time tells an attacker how long the
/// matching prefix is -- a byte-at-a-time forgery oracle against
/// verification paths. The XOR-accumulate loop below touches every byte
/// regardless of where (or whether) the inputs differ.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_CRYPTO_CRYPTOEQUAL_H
#define SGXELIDE_CRYPTO_CRYPTOEQUAL_H

#include "support/Bytes.h"

namespace elide {

/// Compares \p Len bytes of \p A and \p B in constant time; true when
/// equal. Time depends only on \p Len, never on the contents.
inline bool cryptoEqual(const uint8_t *A, const uint8_t *B, size_t Len) {
  uint8_t Diff = 0;
  for (size_t I = 0; I < Len; ++I)
    Diff |= A[I] ^ B[I];
  return Diff == 0;
}

/// Range overload. Ranges of different length compare unequal without
/// touching the contents (length is not secret).
inline bool cryptoEqual(BytesView A, BytesView B) {
  if (A.size() != B.size())
    return false;
  return cryptoEqual(A.data(), B.data(), A.size());
}

} // namespace elide

#endif // SGXELIDE_CRYPTO_CRYPTOEQUAL_H
