file(REMOVE_RECURSE
  "libelide_sgx.a"
)
