//===- tests/fuzz/MakeCorpus.cpp - Deterministic seed-corpus generator ------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the checked-in seed corpora under `tests/fuzz/corpus/`
/// (or `ELIDE_CORPUS_DIR` when set). Every entry is deterministic -- fixed
/// Drbg seeds, fixed patch offsets -- so rerunning the tool is a no-op
/// diff. The `regression-*` entries encode inputs that triggered real
/// bugs fixed in this repository: keep them forever, they are the proof
/// the fixes hold.
///
//===----------------------------------------------------------------------===//

#include "tests/framework/Builders.h"
#include "tests/framework/Corpus.h"
#include "tests/framework/VmDiff.h"

#include "crypto/Drbg.h"
#include "elf/ElfBuilder.h"
#include "elf/ElfTypes.h"
#include "elide/SecretMeta.h"
#include "server/Protocol.h"
#include "sgx/SgxTypes.h"
#include "vm/Isa.h"

#include <cstdio>

using namespace elide;

namespace {

int Failures = 0;

void emit(const std::string &Target, const std::string &Name, BytesView Data) {
  if (Error E = fuzz::writeCorpusEntry(Target, Name, Data)) {
    std::fprintf(stderr, "error: %s/%s: %s\n", Target.c_str(), Name.c_str(),
                 E.message().c_str());
    ++Failures;
    return;
  }
  std::printf("  %s/%-32s %5zu bytes\n", Target.c_str(), Name.c_str(),
              Data.size());
}

//===----------------------------------------------------------------------===//
// Raw ELF64 patch helpers (fixed architectural offsets, independent of the
// parser under test -- a corpus built through ElfImage would be blind to
// exactly the bugs it is meant to pin).
//===----------------------------------------------------------------------===//

constexpr size_t EhdrPhOff = 32;  // e_phoff
constexpr size_t EhdrShOff = 40;  // e_shoff
constexpr size_t EhdrShNum = 60;  // e_shnum
constexpr size_t EhdrShStrNdx = 62;
constexpr size_t PhdrSize = 56;
constexpr size_t ShdrSize = 64;
constexpr size_t SymSize = 24;

/// First program header's p_offset/p_filesz -> values whose sum wraps
/// around 2^64 to a small number. The seed parser's `Offset + FileSize >
/// size` check accepted this (wrapped sum = 0x100); the fixed subtraction
/// form rejects it with ElfErrcBounds.
Bytes patchSegmentOffsetWrap(Bytes Elf) {
  uint64_t PhOff = readLE64(Elf.data() + EhdrPhOff);
  writeLE64(Elf.data() + PhOff + 8, 0xffffffffffffff00ull);  // p_offset
  writeLE64(Elf.data() + PhOff + 32, 0x200);                 // p_filesz
  return Elf;
}

/// Section-name string table re-typed SHT_NOBITS: its Offset/Size then
/// describe no file bytes at all, and the seed parser viewed them as a
/// string table anyway (out-of-bounds reads for every section name). The
/// fix rejects with ElfErrcBadLink.
Bytes patchNobitsShstrtab(Bytes Elf) {
  uint64_t ShOff = readLE64(Elf.data() + EhdrShOff);
  uint16_t ShStrNdx = readLE16(Elf.data() + EhdrShStrNdx);
  writeLE32(Elf.data() + ShOff + ShStrNdx * ShdrSize + 4, SHT_NOBITS);
  return Elf;
}

/// Replaces a byte of the first '.'-led section name in the section-name
/// string table with '\n'. Pins the audit's baseline-key sanitization: a
/// hostile name must not be able to split a `--write-baseline` line.
Bytes patchNewlineSectionName(Bytes Elf) {
  uint64_t ShOff = readLE64(Elf.data() + EhdrShOff);
  uint16_t ShStrNdx = readLE16(Elf.data() + EhdrShStrNdx);
  const uint8_t *Shdr = Elf.data() + ShOff + uint64_t(ShStrNdx) * ShdrSize;
  uint64_t StrOff = readLE64(Shdr + 24);
  uint64_t StrSize = readLE64(Shdr + 32);
  for (uint64_t I = StrOff; I + 1 < StrOff + StrSize && I + 1 < Elf.size();
       ++I) {
    if (Elf[I] == '.' && Elf[I + 1] != 0) {
      Elf[I + 1] = '\n';
      break;
    }
  }
  return Elf;
}

/// A symbol whose st_value + st_size wraps 2^64: `fileOffsetOf` computed
/// `VAddr + Length > Addr + Size` with both sides wrapping, so zeroRange
/// and writeRange scribbled outside the section. The fix fails typed with
/// ElfErrcRange.
Bytes patchSymbolRangeWrap(Bytes Elf) {
  uint64_t ShOff = readLE64(Elf.data() + EhdrShOff);
  uint16_t ShNum = readLE16(Elf.data() + EhdrShNum);
  for (uint16_t I = 0; I < ShNum; ++I) {
    const uint8_t *Shdr = Elf.data() + ShOff + uint64_t(I) * ShdrSize;
    if (readLE32(Shdr + 4) != SHT_SYMTAB)
      continue;
    uint64_t SymTabOff = readLE64(Shdr + 24); // sh_offset
    uint64_t SymTabSize = readLE64(Shdr + 32);
    if (SymTabSize < 2 * SymSize)
      break;
    // Entry 1 (entry 0 is the null symbol).
    writeLE64(Elf.data() + SymTabOff + SymSize + 8, 0xffffffffffffff00ull);
    writeLE64(Elf.data() + SymTabOff + SymSize + 16, 0x200);
    break;
  }
  return Elf;
}

//===----------------------------------------------------------------------===//
// Per-target corpora
//===----------------------------------------------------------------------===//

void makeProtocolCorpus() {
  // Regression: the empty frame. Empty views carried null data pointers
  // into string/memcpy calls before the Bytes.h guards.
  emit("protocol", "regression-empty-input", BytesView());

  Drbg Rng(101);
  Bytes Hello;
  Hello.push_back(FrameHello);
  appendBytes(Hello, Rng.bytes(296)); // Quote-sized garbage body.
  emit("protocol", "seed-hello-quote-sized", Hello);

  Bytes Record;
  Record.push_back(FrameRecord);
  appendBytes(Record, Rng.bytes(8 + 12 + 10)); // Truncated mid-tag.
  emit("protocol", "seed-record-truncated", Record);

  Bytes ErrorFrame;
  ErrorFrame.push_back(FrameError);
  appendBytes(ErrorFrame, viewOf(std::string("corpus error frame")));
  emit("protocol", "seed-error-frame", ErrorFrame);

  Bytes Overloaded = overloadedFrame(77);
  emit("protocol", "seed-overloaded-frame", Overloaded);
  emit("protocol", "seed-overloaded-truncated",
       BytesView(Overloaded.data(), OverloadedFrameSize - 2));

  emit("protocol", "seed-structured", fuzz::buildProtocolFrame(Rng));
}

void makeElfCorpus() {
  Drbg Rng(201);
  Bytes Seed = fuzz::buildSeedElf(Rng);
  emit("elf", "seed-valid", Seed);
  emit("elf", "regression-segment-offset-wrap", patchSegmentOffsetWrap(Seed));
  emit("elf", "regression-nobits-shstrtab", patchNobitsShstrtab(Seed));
  emit("elf", "regression-symbol-range-wrap", patchSymbolRangeWrap(Seed));
  emit("elf", "seed-truncated",
       BytesView(Seed.data(), Seed.size() < 48 ? Seed.size() : 48));
}

void makeSecretMetaCorpus() {
  SecretMeta Plain;
  Plain.DataLength = 512;
  Plain.RestoreOffset = 64;
  emit("secretmeta", "seed-valid-plain", Plain.serialize());

  Drbg Rng(301);
  SecretMeta Enc;
  Enc.DataLength = 4096;
  Enc.RestoreOffset = 128;
  Enc.Encrypted = true;
  Rng.fill(MutableBytesView(Enc.Key.data(), Enc.Key.size()));
  Rng.fill(MutableBytesView(Enc.Iv.data(), Enc.Iv.size()));
  Rng.fill(MutableBytesView(Enc.Mac.data(), Enc.Mac.size()));
  emit("secretmeta", "seed-valid-encrypted", Enc.serialize());

  // Regression: a forged 2^64-scale DataLength deserialized fine before
  // the MaxDataLength plausibility bound (MetaErrcImplausible).
  Bytes Huge = Plain.serialize();
  writeLE64(Huge.data(), 0xffffffffffffffffull);
  emit("secretmeta", "regression-huge-datalength", Huge);

  Bytes BadFlag = Plain.serialize();
  BadFlag[16] = 7; // Encrypted flag: only 0/1 are valid.
  emit("secretmeta", "seed-bad-flag", BadFlag);

  emit("secretmeta", "seed-truncated", BytesView(Huge.data(), 13));
}

void makeWhitelistCorpus() {
  emit("whitelist", "seed-names",
       viewOf(std::string("enclave_main\nelide_restore\npublic_helper\n")));
  // Regression: empty input reached std::string(nullptr, 0) via
  // stringOfBytes before the empty-view guard.
  emit("whitelist", "regression-empty", BytesView());
  emit("whitelist", "seed-duplicates",
       viewOf(std::string("dup\ndup\nother\n\n\ndup\n")));
  Bytes Hostile = bytesOfString("ok\n");
  Hostile.push_back(0x00);
  Hostile.push_back(0xff);
  appendBytes(Hostile, viewOf(std::string("\x7f high\n")));
  Hostile.insert(Hostile.end(), 300, 'A'); // Long name, no trailing newline.
  emit("whitelist", "seed-hostile-bytes", Hostile);
}

void makeLoaderCorpus() {
  Drbg Rng(501);

  Ed25519Seed VSeed{};
  VSeed.fill(0x11);
  Ed25519KeyPair Vendor = ed25519KeyPairFromSeed(VSeed);
  sgx::Measurement Mr;
  Rng.fill(MutableBytesView(Mr.data(), Mr.size()));
  sgx::SigStruct Sig = sgx::SigStruct::sign(Vendor, Mr, 0);

  Bytes GoodSig;
  GoodSig.push_back(0x00);
  appendBytes(GoodSig, Sig.serialize());
  emit("loader", "seed-sigstruct-valid", GoodSig);

  Bytes BadSig = GoodSig;
  BadSig[1 + 32 + 8 + 32] ^= 0x01; // Flip one signature byte.
  emit("loader", "seed-sigstruct-tampered", BadSig);

  // A quote that parses (right size, internally signed) but whose key
  // certificate no authority issued -- verification must reject it.
  sgx::Quote Q;
  Rng.fill(MutableBytesView(Q.Body.MrEnclave.data(), 32));
  Rng.fill(MutableBytesView(Q.Body.MrSigner.data(), 32));
  Rng.fill(MutableBytesView(Q.Body.Data.data(), Q.Body.Data.size()));
  Ed25519Seed ASeed{};
  ASeed.fill(0x22);
  Ed25519KeyPair AttKey = ed25519KeyPairFromSeed(ASeed);
  Q.AttestationKey = AttKey.PublicKey;
  Bytes QuoteMsg = bytesOfString("QUOTE");
  appendBytes(QuoteMsg, Q.Body.serialize());
  Q.Signature = ed25519Sign(AttKey, QuoteMsg);
  Rng.fill(MutableBytesView(Q.KeyCertificate.data(), Q.KeyCertificate.size()));
  Bytes ForgedQuote;
  ForgedQuote.push_back(0x01);
  appendBytes(ForgedQuote, Q.serialize());
  emit("loader", "seed-quote-forged-cert", ForgedQuote);

  Bytes SeedElf = fuzz::buildSeedElf(Rng);
  Bytes ElfInput;
  ElfInput.push_back(0x02);
  appendBytes(ElfInput, SeedElf);
  emit("loader", "seed-elf", ElfInput);

  // Regression: the segment-offset wrap again, this time walked by the
  // loader's page loop, which trusted the parser's (broken) bounds check.
  Bytes WrapInput;
  WrapInput.push_back(0x02);
  appendBytes(WrapInput, patchSegmentOffsetWrap(SeedElf));
  emit("loader", "regression-elf-segment-wrap", WrapInput);
}

void makeAuditCorpus() {
  // Input layout (see FuzzAudit.cpp): [flags][param][elf...]. Flag bits:
  // 0x01 whitelist, 0x02 meta, 0x04 scaled DataLength, 0x08 encrypted,
  // 0x10 explicit region, 0x20 plaintext, 0x40 SGX2 mode, 0x80 flow
  // checks (CFG + taint over the text).
  Drbg Rng(601);
  Bytes Elf = fuzz::buildSeedElf(Rng);
  auto blob = [](uint8_t Flags, uint8_t Param, BytesView Body) {
    Bytes B;
    B.push_back(Flags);
    B.push_back(Param);
    appendBytes(B, Body);
    return B;
  };
  emit("audit", "seed-all-facts", blob(0x33, 0x20, Elf));
  emit("audit", "seed-no-facts", blob(0x00, 0x00, Elf));
  emit("audit", "seed-sgx2-encrypted-meta", blob(0x4b, 0x40, Elf));
  emit("audit", "seed-truncated-elf",
       blob(0x33, 0x20, BytesView(Elf.data(), Elf.size() < 48 ? Elf.size() : 48)));
  emit("audit", "regression-empty", BytesView());
  // Regression: a '\n' inside a section name reached --write-baseline
  // output unescaped before Diagnostic::key() sanitized name bytes.
  emit("audit", "regression-newline-section-name",
       blob(0x13, 0x10, patchNewlineSectionName(Elf)));

  // Flow checks over a random-byte text section: the CFG builder and
  // taint fixpoint must be total over whatever decodes out of it.
  emit("audit", "seed-flow-checks-hostile-text", blob(0x91, 0x18, Elf));
  // Flow checks with every fact supplied at once, under SGX2.
  emit("audit", "seed-flow-checks-all-facts", blob(0xfb, 0x20, Elf));
  // A text section that is one dense web of branches: every slot is a
  // conditional branch targeting another slot (or just outside), the
  // worst case for block slicing and escape handling.
  {
    Bytes Branchy;
    for (int I = 0; I < 48; ++I) {
      int32_t Hop = int32_t(((I * 37) % 53) - 26) * 8;
      emitInstruction(Branchy, {I % 2 ? Opcode::Beqz : Opcode::Bnez,
                                0, uint8_t(I % 31), 0, Hop});
    }
    ElfBuilder BB;
    size_t TI = BB.addProgbits(".text", 0x1000, Branchy,
                               SHF_ALLOC | SHF_EXECINSTR);
    BB.addSymbol("elide_restore", 0x1000, 16, STT_FUNC, TI);
    BB.addSymbol("__bridge_elide_restore", 0x1010, 16, STT_FUNC, TI);
    Expected<Bytes> BranchyElf = BB.build();
    if (BranchyElf)
      emit("audit", "seed-flow-checks-branch-web", blob(0x90, 0x08, *BranchyElf));
  }
}

void makeVmDiffCorpus() {
  // Inputs are raw SVM programs loaded at pc 0 (see FuzzVmDiff.cpp).
  auto ins = [](Bytes &Code, Opcode Op, uint8_t Rd, uint8_t Rs1, uint8_t Rs2,
                int32_t Imm) {
    emitInstruction(Code, {Op, Rd, Rs1, Rs2, Imm});
  };

  // Every fusible superinstruction shape back to back: cmp+branch loop,
  // LdI+LdIH constant, AddI+load and AddI+store addressing.
  Bytes Fused;
  ins(Fused, Opcode::LdI, 2, 0, 0, 5);             // loop counter
  ins(Fused, Opcode::LdI, 10, 0, 0, 0x8000);       // data base
  ins(Fused, Opcode::LdI, 3, 0, 0, 0x11111111);    // \ fused 64-bit
  ins(Fused, Opcode::LdIH, 3, 0, 0, 0x2222);       // / constant
  ins(Fused, Opcode::AddI, 13, 10, 0, 16);         // \ fused store
  ins(Fused, Opcode::StD, 0, 13, 3, 0);            // /
  ins(Fused, Opcode::AddI, 14, 10, 0, 8);          // \ fused load
  ins(Fused, Opcode::LdD, 4, 14, 0, 8);            // /
  ins(Fused, Opcode::AddI, 2, 2, 0, -1);           // counter--
  ins(Fused, Opcode::Sne, 5, 2, 0, 0);             // \ fused branch
  ins(Fused, Opcode::Bnez, 0, 5, 0, -8 * 8);       // / back to the StD pair
  ins(Fused, Opcode::Add, 1, 3, 4, 0);
  ins(Fused, Opcode::Halt, 0, 0, 0, 0);
  emit("vmdiff", "seed-fused-pairs", Fused);

  // A two-instruction fused loop that dies of budget exhaustion; the
  // driver's budget is even, the loop is 2 wide, so the boundary lands
  // between the halves on some alignments.
  Bytes Tight;
  ins(Tight, Opcode::Seq, 2, 0, 0, 0);             // r2 = 1
  ins(Tight, Opcode::Bnez, 0, 2, 0, -8);           // forever
  ins(Tight, Opcode::Halt, 0, 0, 0, 0);
  emit("vmdiff", "seed-budget-boundary", Tight);

  // Self-modifying store: rewrites a downstream Halt with an Illegal
  // word after the slot has (in a pre-decoding engine) been decoded.
  Bytes SelfMod;
  ins(SelfMod, Opcode::LdI, 2, 0, 0, 4 * 8);       // address of slot 4
  ins(SelfMod, Opcode::StD, 0, 2, 0, 0);           // zero it out
  ins(SelfMod, Opcode::Nop, 0, 0, 0, 0);
  ins(SelfMod, Opcode::Nop, 0, 0, 0, 0);
  ins(SelfMod, Opcode::Halt, 0, 0, 0, 0);          // becomes Illegal
  emit("vmdiff", "seed-self-modify", SelfMod);

  // Restore-style rewrite through the harness tcall (index 1 writes an
  // AddI into a code slot), then keep running.
  Bytes Restore;
  ins(Restore, Opcode::Tcall, 0, 0, 0, 1);
  ins(Restore, Opcode::Nop, 0, 0, 0, 0);
  ins(Restore, Opcode::LdI, 5, 0, 0, 7);
  ins(Restore, Opcode::Tcall, 0, 0, 0, 5);
  ins(Restore, Opcode::Add, 1, 1, 5, 0);
  ins(Restore, Opcode::Halt, 0, 0, 0, 0);
  emit("vmdiff", "seed-restore-tcall", Restore);

  // Regression: operand bytes with high bits set. The decoder took the
  // full byte as a register index and walked off the 32-entry register
  // file (out-of-bounds read/write in release builds); fields now mask
  // to 5 bits.
  Bytes HighRegs;
  ins(HighRegs, Opcode::LdI, 3, 0, 0, 21);
  ins(HighRegs, Opcode::Add, 1, 0xe3, 0x83, 0);    // rs1 = rs2 = r3
  ins(HighRegs, Opcode::LdIH, 0xed, 0x94, 0xf8, -1841113383);
  ins(HighRegs, Opcode::Halt, 0, 0, 0, 0);
  emit("vmdiff", "regression-register-high-bits", HighRegs);

  // One structured program from the generator, at the driver's options.
  Drbg Rng(701);
  vmdiff::ProgramOptions Opts;
  Opts.MaxInstructions = 256;
  Opts.Budget = 2048;
  emit("vmdiff", "seed-structured", vmdiff::generateProgram(Rng, Opts));
}

} // namespace

int main() {
  std::printf("writing seed corpora under %s\n", fuzz::corpusRoot().c_str());
  makeProtocolCorpus();
  makeElfCorpus();
  makeSecretMetaCorpus();
  makeWhitelistCorpus();
  makeLoaderCorpus();
  makeAuditCorpus();
  makeVmDiffCorpus();
  return Failures == 0 ? 0 : 1;
}
