//===- apps/DesApp.cpp - The DES benchmark ---------------------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DES (FIPS 46-3) with the full cipher -- permutations, key schedule,
/// Feistel rounds, S-boxes -- inside the enclave, mirroring the paper's
/// port of tarequeh/DES. The workload checks the classic published test
/// vectors and random round trips.
///
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "apps/AppUtil.h"

#include "crypto/Drbg.h"
#include "support/Hex.h"

using namespace elide;
using namespace elide::apps;

namespace {

const uint8_t TableIp[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

const uint8_t TableFp[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

const uint8_t TableE[48] = {32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,
                            8,  9,  10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
                            16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
                            24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

const uint8_t TableP[32] = {16, 7, 20, 21, 29, 12, 28, 17, 1,  15, 23,
                            26, 5, 18, 31, 10, 2,  8,  24, 14, 32, 27,
                            3,  9, 19, 13, 30, 6,  22, 11, 4,  25};

const uint8_t TablePc1[56] = {57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34,
                              26, 18, 10, 2,  59, 51, 43, 35, 27, 19, 11, 3,
                              60, 52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7,
                              62, 54, 46, 38, 30, 22, 14, 6,  61, 53, 45, 37,
                              29, 21, 13, 5,  28, 20, 12, 4};

const uint8_t TablePc2[48] = {14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10,
                              23, 19, 12, 4,  26, 8,  16, 7,  27, 20, 13, 2,
                              41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
                              44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

const uint8_t TableShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2,
                                 1, 2, 2, 2, 2, 2, 2, 1};

const uint8_t TableSbox[512] = {
    // S1
    14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
    0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
    4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
    15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    // S2
    15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10,
    3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5,
    0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15,
    13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    // S3
    10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8,
    13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1,
    13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7,
    1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    // S4
    7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15,
    13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9,
    10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4,
    3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    // S5
    2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9,
    14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6,
    4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14,
    11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    // S6
    12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11,
    10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8,
    9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6,
    4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    // S7
    4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1,
    13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6,
    1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2,
    6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    // S8
    13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7,
    1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2,
    7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8,
    2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11};

const char *DesAlgorithm = R"elc(
var des_subkeys: u64[16];

fn des_load_be64(p: *u8) -> u64 {
  return (load_be32(p) << 32) | load_be32(p + 4);
}

fn des_store_be64(p: *u8, v: u64) {
  store_be32(p, v >> 32);
  store_be32(p + 4, v & 0xffffffff);
}

// Generic bit permutation: table entries are 1-based positions counted
// from the most significant bit of an inbits-wide value.
fn des_permute(val: u64, tbl: *u8, n: u64, inbits: u64) -> u64 {
  var out: u64 = 0;
  for (var i: u64 = 0; i < n; i = i + 1) {
    out = out << 1;
    var pos: u64 = tbl[i] as u64;
    out = out | ((val >> (inbits - pos)) & 1);
  }
  return out;
}

fn des_rotl28(v: u64, n: u64) -> u64 {
  return ((v << n) | (v >> (28 - n))) & 0xfffffff;
}

fn des_key_schedule(key: *u8) {
  var k: u64 = des_load_be64(key);
  var pc1: u64 = des_permute(k, &des_pc1[0], 56, 64);
  var c: u64 = (pc1 >> 28) & 0xfffffff;
  var d: u64 = pc1 & 0xfffffff;
  for (var r: u64 = 0; r < 16; r = r + 1) {
    var s: u64 = des_shifts[r] as u64;
    c = des_rotl28(c, s);
    d = des_rotl28(d, s);
    des_subkeys[r] = des_permute((c << 28) | d, &des_pc2[0], 48, 56);
  }
}

fn des_feistel(r: u64, subkey: u64) -> u64 {
  var e: u64 = des_permute(r, &des_e[0], 48, 32) ^ subkey;
  var out: u64 = 0;
  for (var i: u64 = 0; i < 8; i = i + 1) {
    var six: u64 = (e >> (42 - 6 * i)) & 0x3f;
    var row: u64 = ((six >> 4) & 2) | (six & 1);
    var col: u64 = (six >> 1) & 0xf;
    out = (out << 4) | (des_sbox[i * 64 + row * 16 + col] as u64);
  }
  return des_permute(out, &des_p[0], 32, 32);
}

fn des_crypt_block(inp: *u8, outp: *u8, decrypt: u64) {
  var block: u64 = des_load_be64(inp);
  var ip: u64 = des_permute(block, &des_ip[0], 64, 64);
  var l: u64 = ip >> 32;
  var r: u64 = ip & 0xffffffff;
  for (var round: u64 = 0; round < 16; round = round + 1) {
    var k: u64 = des_subkeys[round];
    if (decrypt != 0) {
      k = des_subkeys[15 - round];
    }
    var next: u64 = l ^ des_feistel(r, k);
    l = r;
    r = next;
  }
  // Final swap, then the inverse initial permutation.
  var pre: u64 = (r << 32) | l;
  des_store_be64(outp, des_permute(pre, &des_fp[0], 64, 64));
}

// Ecall: input = [mode u8][key 8][blocks N*8], output = blocks.
export fn des_run(inp: *u8, inlen: u64, outp: *u8, outcap: u64) -> u64 {
  if (inlen < 9) {
    return 1;
  }
  var mode: u64 = inp[0] as u64;
  var key: *u8 = inp + 1;
  var data: *u8 = inp + 9;
  var dlen: u64 = inlen - 9;
  if (dlen % 8 != 0) {
    return 2;
  }
  if (outcap < dlen) {
    return 3;
  }
  des_key_schedule(key);
  for (var off: u64 = 0; off < dlen; off = off + 8) {
    des_crypt_block(data + off, outp + off, mode);
  }
  return 0;
}
)elc";

Bytes desInput(uint8_t Mode, BytesView Key, BytesView Data) {
  Bytes In;
  In.push_back(Mode);
  appendBytes(In, Key);
  appendBytes(In, Data);
  return In;
}

Error desWorkload(sgx::Enclave &E) {
  // Published known-answer vectors.
  struct Kat {
    const char *Key;
    const char *Plain;
    const char *Cipher;
  };
  const Kat Kats[] = {
      {"133457799bbcdff1", "0123456789abcdef", "85e813540f0ab405"},
      {"0000000000000000", "0000000000000000", "8ca64de9c1b123a7"},
      {"ffffffffffffffff", "ffffffffffffffff", "7359b2163e4edc58"},
  };
  for (const Kat &V : Kats) {
    Bytes Key = fromHex(V.Key).takeValue();
    Bytes Pt = fromHex(V.Plain).takeValue();
    ELIDE_TRY(Bytes Ct, runEcall(E, "des_run", desInput(0, Key, Pt), 8));
    if (toHex(Ct) != V.Cipher)
      return makeError(std::string("DES enclave failed KAT: got ") +
                       toHex(Ct) + ", want " + V.Cipher);
    ELIDE_TRY(Bytes Back, runEcall(E, "des_run", desInput(1, Key, Ct), 8));
    if (Back != Pt)
      return makeError("DES enclave decrypt(encrypt(x)) != x on KAT");
  }

  // Random multi-block round trips.
  Drbg Rng(0xde5);
  for (int Iter = 0; Iter < 4; ++Iter) {
    Bytes Key = Rng.bytes(8);
    Bytes Pt = Rng.bytes(8 * 12);
    ELIDE_TRY(Bytes Ct, runEcall(E, "des_run", desInput(0, Key, Pt),
                                 Pt.size()));
    if (Ct == Pt)
      return makeError("DES enclave ciphertext equals plaintext");
    ELIDE_TRY(Bytes Back, runEcall(E, "des_run", desInput(1, Key, Ct),
                                   Ct.size()));
    if (Back != Pt)
      return makeError("DES enclave round trip failed");
  }
  return Error::success();
}

} // namespace

AppSpec apps::makeDesApp() {
  std::string Source;
  Source += elcArrayU8("des_ip", BytesView(TableIp, 64));
  Source += elcArrayU8("des_fp", BytesView(TableFp, 64));
  Source += elcArrayU8("des_e", BytesView(TableE, 48));
  Source += elcArrayU8("des_p", BytesView(TableP, 32));
  Source += elcArrayU8("des_pc1", BytesView(TablePc1, 56));
  Source += elcArrayU8("des_pc2", BytesView(TablePc2, 48));
  Source += elcArrayU8("des_shifts", BytesView(TableShifts, 16));
  Source += elcArrayU8("des_sbox", BytesView(TableSbox, 512));
  Source += DesAlgorithm;

  AppSpec Spec;
  Spec.Name = "DES";
  Spec.TrustedSources = {{"des.elc", Source}};
  Spec.RunWorkload = desWorkload;
  Spec.IsGame = false;
  return Spec;
}
