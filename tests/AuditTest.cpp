//===- tests/AuditTest.cpp - Static secrecy-audit unit tests ----------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for `src/analysis`: the diagnostics engine (codes, keys,
/// baselines, JSON), each of the four checkers against deliberately leaky
/// crafted images, and the zero-false-positive guarantee over images the
/// real pipeline produces. Every leaky image is built with `ElfBuilder`
/// and seeds exactly one defect class, so a failing assertion names the
/// checker that regressed.
///
//===----------------------------------------------------------------------===//

#include "analysis/Audit.h"
#include "analysis/Cfg.h"
#include "analysis/Diagnostics.h"
#include "analysis/Taint.h"
#include "crypto/Drbg.h"
#include "crypto/Ed25519.h"
#include "elf/ElfBuilder.h"
#include "elf/ElfImage.h"
#include "elide/Pipeline.h"
#include "vm/Isa.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace elide;
using namespace elide::analysis;

namespace {

//===----------------------------------------------------------------------===//
// Crafted-image machinery
//===----------------------------------------------------------------------===//

Instruction instr(Opcode Op, uint8_t Rd = 0, uint8_t Rs1 = 0, uint8_t Rs2 = 0,
                  int32_t Imm = 0) {
  Instruction I;
  I.Op = Op;
  I.Rd = Rd;
  I.Rs1 = Rs1;
  I.Rs2 = Rs2;
  I.Imm = Imm;
  return I;
}

/// The well-formed sanitized-enclave shape every test starts from.
/// Text layout (base 0x1000, one 8-byte slot per line):
///
///   0x1000  __bridge_elide_restore:  call +16   ; into elide_restore
///   0x1008                           halt
///   0x1010  elide_restore:           nop
///   0x1018                           ret
///   0x1020  secret_fn (elided):      0 x 32 bytes
///
Bytes defaultText() {
  Bytes Code;
  emitInstruction(Code, instr(Opcode::Call, 0, 0, 0, 16));
  emitInstruction(Code, instr(Opcode::Halt));
  emitInstruction(Code, instr(Opcode::Nop));
  emitInstruction(Code, instr(Opcode::Ret));
  Code.resize(Code.size() + 4 * SvmInstrSize, 0);
  return Code;
}

struct FuncSym {
  std::string Name;
  uint64_t Addr = 0;
  uint64_t Size = 0;
};

struct CraftSpec {
  Bytes Text = defaultText();
  uint64_t TextFlags = SHF_ALLOC | SHF_EXECINSTR | SHF_WRITE;
  Bytes Rodata;                 ///< Added at 0x2000 when non-empty.
  bool WxSegment = false;       ///< Extra W+X data segment at 0x3000.
  bool HaveManifest = true;
  std::string Manifest = "elide_restore\n";
  bool RestoreSymbols = true;   ///< __bridge_elide_restore + elide_restore.
  std::vector<FuncSym> ExtraFuncs;
  Bytes RelaText;               ///< ".rela.text" contents when non-empty.
};

Bytes craft(const CraftSpec &S) {
  ElfBuilder B;
  size_t TextIdx = B.addProgbits(".text", 0x1000, S.Text, S.TextFlags);
  if (!S.Rodata.empty())
    B.addProgbits(".rodata", 0x2000, S.Rodata, SHF_ALLOC);
  if (S.WxSegment)
    B.addProgbits(".wxdata", 0x3000, Bytes(32, 0xAA),
                  SHF_ALLOC | SHF_WRITE | SHF_EXECINSTR);
  if (S.HaveManifest)
    B.addProgbits(".svm.ecalls", 0, bytesOfString(S.Manifest), 0);
  if (!S.RelaText.empty())
    B.addProgbits(".rela.text", 0, S.RelaText, 0);
  if (S.RestoreSymbols) {
    B.addSymbol("__bridge_elide_restore", 0x1000, 16, STT_FUNC, TextIdx);
    B.addSymbol("elide_restore", 0x1010, 16, STT_FUNC, TextIdx);
  }
  for (const FuncSym &F : S.ExtraFuncs)
    B.addSymbol(F.Name, F.Addr, F.Size, STT_FUNC, TextIdx);
  Expected<Bytes> File = B.build();
  return File ? File.takeValue() : Bytes();
}

/// The build-side facts matching `defaultText()`: one explicitly elided
/// region covering secret_fn's slots, and a whitelist naming the restorer.
AuditInput inputFor(const ElfImage &Image) {
  AuditInput In;
  In.Image = &Image;
  In.ElidedRegions = {{0x20, 0x20, "secret_fn"}};
  In.WhitelistNames = {"elide_restore"};
  In.HaveWhitelist = true;
  return In;
}

AuditReport runChecks(const AuditInput &In, unsigned Checks,
                      SgxMode Mode = SgxMode::Sgx1) {
  AuditOptions Opts;
  Opts.Checks = Checks;
  Opts.Mode = Mode;
  return runAudit(In, Opts);
}

size_t countCode(const AuditReport &R, int Code) {
  size_t N = 0;
  for (const Diagnostic &D : R.Diags)
    N += (D.Code == Code);
  return N;
}

const Diagnostic *findCode(const AuditReport &R, int Code) {
  for (const Diagnostic &D : R.Diags)
    if (D.Code == Code)
      return &D;
  return nullptr;
}

/// Overwrites the slot at text offset \p Off with \p I.
void poke(Bytes &Text, size_t Off, const Instruction &I) {
  uint8_t Slot[SvmInstrSize];
  encodeInstruction(I, Slot);
  std::copy(Slot, Slot + SvmInstrSize, Text.begin() + Off);
}

//===----------------------------------------------------------------------===//
// Diagnostics engine
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, KeyFormatIsStable) {
  Diagnostic D;
  D.Code = AudElidedSymbolNamed;
  D.Sev = Severity::Error;
  D.Message = "reworded messages must not change the key";
  D.Section = ".symtab";
  D.Offset = 0x18;
  D.Length = 24;
  D.Symbol = "secret_fn";
  EXPECT_EQ(D.key(), "AUD201:.symtab:0x18:secret_fn");

  Diagnostic NoSym;
  NoSym.Code = AudResidualSecretBytes;
  NoSym.Section = ".text";
  NoSym.Offset = 0x40;
  EXPECT_EQ(NoSym.key(), "AUD101:.text:0x40");
}

TEST(DiagnosticsTest, KeySanitizesHostileNames) {
  // Section/symbol names come from untrusted images; a newline or
  // trailing space must not be able to split or mutate a baseline line.
  Diagnostic D;
  D.Code = AudStrtabResidue;
  D.Section = ".bad\nname";
  D.Offset = 0;
  D.Symbol = "sym ";
  EXPECT_EQ(D.key(), "AUD202:.bad_name:0x0:sym_");
  Expected<Baseline> B = Baseline::parse(D.key() + "\n");
  ASSERT_TRUE(static_cast<bool>(B)) << B.errorMessage();
  EXPECT_TRUE(B->suppresses(D));
}

TEST(DiagnosticsTest, RenderSpellsSeverityCodeAndLocation) {
  Diagnostic D;
  D.Code = AudResidualSecretBytes;
  D.Sev = Severity::Error;
  D.Message = "residual bytes";
  D.Section = ".text";
  D.Offset = 0x40;
  D.Length = 0x10;
  EXPECT_EQ(D.render(), "error: AUD101: residual bytes [.text+0x40..0x50]");
  D.Length = 0;
  D.Sev = Severity::Warning;
  EXPECT_EQ(D.render(), "warning: AUD101: residual bytes [.text+0x40]");
}

TEST(DiagnosticsTest, CodeRegistryNamesEveryPublishedCode) {
  const int Codes[] = {101, 102, 103, 104, 201, 202, 203, 204, 205,
                       301, 302, 303, 304, 305, 306, 307, 401, 402,
                       403, 404, 405, 501, 502, 503, 511, 521, 522,
                       601, 602, 603, 604, 605};
  for (int C : Codes) {
    EXPECT_EQ(auditCodeName(C).size(), 6u);
    EXPECT_STRNE(auditCodeTitle(C), "unknown diagnostic")
        << "code " << C << " missing from the registry";
  }
  EXPECT_STREQ(auditCodeTitle(999), "unknown diagnostic");
  EXPECT_EQ(auditCodeName(101), "AUD101");
}

TEST(DiagnosticsTest, BaselineParsesCommentsAndSuppresses) {
  Expected<Baseline> B = Baseline::parse("# a comment\n"
                                         "  \n"
                                         "AUD201:.symtab:0x18:secret_fn\r\n"
                                         "AUD101:.text:0x40  \n");
  ASSERT_TRUE(static_cast<bool>(B)) << B.errorMessage();
  EXPECT_EQ(B->size(), 2u);

  Diagnostic D;
  D.Code = AudElidedSymbolNamed;
  D.Section = ".symtab";
  D.Offset = 0x18;
  D.Symbol = "secret_fn";
  EXPECT_TRUE(B->suppresses(D));
  D.Offset = 0x30; // Different anchor: different finding.
  EXPECT_FALSE(B->suppresses(D));
}

TEST(DiagnosticsTest, BaselineRejectsMalformedLines) {
  EXPECT_FALSE(static_cast<bool>(Baseline::parse("not a key\n")));
  EXPECT_FALSE(static_cast<bool>(Baseline::parse("AUDxyz:.text:0x0\n")));
  EXPECT_FALSE(static_cast<bool>(Baseline::parse("AUD20:.text:0x0\n")));
  Expected<Baseline> Bad = Baseline::parse("AUD201 .symtab 0x18\n");
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_NE(Bad.errorMessage().find("line 1"), std::string::npos);
}

TEST(DiagnosticsTest, EngineSortsCountsAndSuppresses) {
  Expected<Baseline> B = Baseline::parse("AUD402:.text:0x8\n");
  ASSERT_TRUE(static_cast<bool>(B));
  DiagnosticEngine Engine(&*B);
  Engine.report(AudPreRestoreReachesElided, Severity::Error, "reach", ".text",
                0x20);
  Engine.report(AudPreRestoreReachesElided, Severity::Error, "suppressed",
                ".text", 0x8);
  Engine.report(AudResidualSecretBytes, Severity::Error, "residual", ".text",
                0x40);
  Engine.report(AudOrphanBridge, Severity::Warning, "orphan");
  AuditReport R = Engine.take();

  ASSERT_EQ(R.Diags.size(), 3u);
  EXPECT_EQ(R.Diags[0].Code, 101); // Sorted by code, checker order.
  EXPECT_EQ(R.Diags[1].Code, 204);
  EXPECT_EQ(R.Diags[2].Code, 402);
  EXPECT_EQ(R.Errors, 2u);
  EXPECT_EQ(R.Warnings, 1u);
  EXPECT_EQ(R.Suppressed, 1u);
  EXPECT_FALSE(R.clean());
}

TEST(DiagnosticsTest, JsonEscapeHandlesControlBytes) {
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("x\n\t\r"), "x\\n\\t\\r");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(DiagnosticsTest, JsonRenderingMatchesDocumentedSchema) {
  DiagnosticEngine Engine;
  Engine.report(AudElidedSymbolNamed, Severity::Error, "leaked \"name\"",
                ".symtab", 0x18, 24, "secret_fn");
  AuditReport R = Engine.take();
  R.Families = {"metadata"};
  std::string Json = R.renderJson();
  EXPECT_NE(Json.find("\"version\":2"), std::string::npos);
  EXPECT_NE(Json.find("\"families\":[\"metadata\"]"), std::string::npos);
  EXPECT_NE(Json.find("\"code\":\"AUD201\""), std::string::npos);
  EXPECT_NE(Json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(Json.find("\"message\":\"leaked \\\"name\\\"\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"offset\":24"), std::string::npos);
  EXPECT_NE(Json.find("\"key\":\"AUD201:.symtab:0x18:secret_fn\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"summary\":{\"errors\":1,\"warnings\":0"),
            std::string::npos);
}

TEST(DiagnosticsTest, BaselineRenderingRoundTrips) {
  DiagnosticEngine Engine;
  Engine.report(AudElidedSymbolNamed, Severity::Error, "leak", ".symtab",
                0x18, 24, "secret_fn");
  Engine.report(AudOrphanBridge, Severity::Warning, "orphan", ".svm.ecalls",
                0, 0, "__bridge_ghost");
  AuditReport R = Engine.take();
  Expected<Baseline> B = Baseline::parse(R.renderBaseline());
  ASSERT_TRUE(static_cast<bool>(B)) << B.errorMessage();
  EXPECT_EQ(B->size(), 2u);
  for (const Diagnostic &D : R.Diags)
    EXPECT_TRUE(B->suppresses(D));
}

//===----------------------------------------------------------------------===//
// Elided-region derivation
//===----------------------------------------------------------------------===//

TEST(EffectiveRegionsTest, ExplicitRegionsWin) {
  Bytes File = craft({});
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditInput In = inputFor(*Image);
  bool Inferred = true;
  std::vector<ElidedRegion> R = effectiveElidedRegions(In, &Inferred);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Name, "secret_fn");
  EXPECT_EQ(R[0].Offset, 0x20u);
  EXPECT_FALSE(Inferred);
}

TEST(EffectiveRegionsTest, SymbolFallbackSkipsBridgeThunks) {
  CraftSpec S;
  S.ExtraFuncs = {{"secret_fn", 0x1020, 0x20}};
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditInput In = inputFor(*Image);
  In.ElidedRegions.clear();
  bool Inferred = true;
  std::vector<ElidedRegion> R = effectiveElidedRegions(In, &Inferred);
  // Only secret_fn: the bridge is implicitly whitelisted, elide_restore
  // explicitly so.
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Name, "secret_fn");
  EXPECT_EQ(R[0].Offset, 0x20u);
  EXPECT_EQ(R[0].Length, 0x20u);
  EXPECT_FALSE(Inferred);
}

TEST(EffectiveRegionsTest, InfersZeroRunsWithoutAnyFacts) {
  Bytes File = craft({});
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditInput In;
  In.Image = &*Image;
  bool Inferred = false;
  std::vector<ElidedRegion> R = effectiveElidedRegions(In, &Inferred);
  EXPECT_TRUE(Inferred);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_TRUE(R[0].Name.empty());
  // The run must cover the zeroed secret slots [0x20, 0x40).
  EXPECT_LE(R[0].Offset, 0x20u);
  EXPECT_GE(R[0].Offset + R[0].Length, 0x40u);
}

//===----------------------------------------------------------------------===//
// AUD1xx -- residual-secret scan
//===----------------------------------------------------------------------===//

TEST(ResidualCheckTest, Aud101FlagsUnredactedBytes) {
  CraftSpec S;
  S.Text = defaultText();
  // Seed the leak: the "elided" slots still hold code.
  for (int I = 0; I < 4; ++I) {
    uint8_t Slot[8];
    encodeInstruction(instr(Opcode::LdI, 1, 0, 0, 0x1234 + I), Slot);
    std::copy(Slot, Slot + 8, S.Text.begin() + 0x20 + I * 8);
  }
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditReport R = runChecks(inputFor(*Image), CheckResidual);
  const Diagnostic *D = findCode(R, AudResidualSecretBytes);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
  EXPECT_EQ(D->Symbol, "secret_fn");
  EXPECT_EQ(D->Section, ".text");
  EXPECT_GE(R.Errors, 1u);
}

TEST(ResidualCheckTest, Aud102FindsPlaintextCopiedIntoRodata) {
  Bytes Plaintext;
  for (int I = 0; I < 32; ++I)
    Plaintext.push_back((uint8_t)(0x41 + I)); // High entropy, non-trivial.
  CraftSpec S;
  S.Rodata = bytesOfString("prefix-pad-");
  appendBytes(S.Rodata, Plaintext); // The leaked copy.
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditInput In = inputFor(*Image);
  In.SecretPlaintext = Plaintext;
  AuditReport R = runChecks(In, CheckResidual);
  const Diagnostic *D = findCode(R, AudSecretBytesLeaked);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
  EXPECT_EQ(D->Section, ".rodata");
}

TEST(ResidualCheckTest, Aud103FlagsCodeShapedDataSections) {
  CraftSpec S;
  for (int I = 0; I < 9; ++I) // > MinCodeRun consecutive plausible slots.
    emitInstruction(S.Rodata, instr(Opcode::Add, 1, 2, 3, 0x11223344));
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditReport R = runChecks(inputFor(*Image), CheckResidual);
  const Diagnostic *D = findCode(R, AudCodeLikeData);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Warning);
  EXPECT_EQ(D->Section, ".rodata");
}

TEST(ResidualCheckTest, Aud103IgnoresAsciiRodata) {
  CraftSpec S;
  std::string Strings;
  while (Strings.size() < 128)
    Strings += "the quick brown fox jumps over the lazy dog\n";
  S.Rodata = bytesOfString(Strings);
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditReport R = runChecks(inputFor(*Image), CheckResidual);
  EXPECT_TRUE(R.clean()) << R.renderText();
}

TEST(ResidualCheckTest, Aud104FindsEmbeddedMetaAndKey) {
  AuditMeta Meta;
  Meta.DataLength = 0x20;
  Meta.RestoreOffset = 0x10;
  Meta.Encrypted = true;
  for (int I = 0; I < 16; ++I)
    Meta.KeyBytes.push_back((uint8_t)(0x90 + I));
  for (int I = 0; I < 61; ++I)
    Meta.Serialized.push_back((uint8_t)(0x30 + I));

  CraftSpec S;
  S.Rodata = Meta.Serialized; // Both needles leak into .rodata.
  appendBytes(S.Rodata, Meta.KeyBytes);
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditInput In = inputFor(*Image);
  In.Meta = Meta;
  AuditReport R = runChecks(In, CheckResidual);
  EXPECT_EQ(countCode(R, AudMetaInImage), 2u) << R.renderText();
  EXPECT_GE(R.Errors, 2u);
}

//===----------------------------------------------------------------------===//
// AUD2xx -- metadata-leak check
//===----------------------------------------------------------------------===//

TEST(MetadataCheckTest, Aud201FlagsSymbolNamingElidedFunction) {
  CraftSpec S;
  S.ExtraFuncs = {{"secret_fn", 0x1020, 0x20}};
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditReport R = runChecks(inputFor(*Image), CheckMetadata);
  const Diagnostic *D = findCode(R, AudElidedSymbolNamed);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
  EXPECT_EQ(D->Symbol, "secret_fn");
  EXPECT_NE(D->Message.find("0x1020"), std::string::npos) << D->Message;
}

TEST(MetadataCheckTest, Aud202FlagsStringTableResidue) {
  CraftSpec S;
  S.ExtraFuncs = {{"ghost_fn", 0x1020, 0x20}};
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Parsed = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.errorMessage();

  // Simulate a sloppy sanitizer: drop the symtab entry but keep the name.
  size_t Index = 0;
  bool Found = false;
  for (const ElfSymbol &Sym : Parsed->symbols()) {
    ++Index; // Table index (the null entry is index 0).
    if (Sym.Name == "ghost_fn") {
      Found = true;
      break;
    }
  }
  ASSERT_TRUE(Found);
  const ElfSection *SymTab = Parsed->sectionByName(".symtab");
  ASSERT_NE(SymTab, nullptr);
  std::fill(File.begin() + SymTab->Offset + Index * 24,
            File.begin() + SymTab->Offset + (Index + 1) * 24, 0);

  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  ASSERT_EQ(Image->symbolByName("ghost_fn"), nullptr);
  AuditReport R = runChecks(inputFor(*Image), CheckMetadata);
  const Diagnostic *D = findCode(R, AudStrtabResidue);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
  EXPECT_NE(D->Message.find("ghost_fn"), std::string::npos) << D->Message;
}

TEST(MetadataCheckTest, Aud203FlagsRelocationIntoElidedRange) {
  CraftSpec S;
  S.RelaText.resize(24, 0);
  writeLE64(S.RelaText.data(), 0x1028); // r_offset inside secret_fn.
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditReport R = runChecks(inputFor(*Image), CheckMetadata);
  const Diagnostic *D = findCode(R, AudRelocationLeak);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
  EXPECT_EQ(D->Section, ".rela.text");
  EXPECT_EQ(D->Symbol, "secret_fn");
}

TEST(MetadataCheckTest, Aud204FlagsOrphanBridge) {
  CraftSpec S;
  S.ExtraFuncs = {{"__bridge_ghost", 0x1008, 8}};
  Bytes File = craft(S); // Manifest only exports elide_restore.
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditReport R = runChecks(inputFor(*Image), CheckMetadata);
  const Diagnostic *D = findCode(R, AudOrphanBridge);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Warning);
  EXPECT_EQ(D->Symbol, "__bridge_ghost");
}

TEST(MetadataCheckTest, Aud205FlagsManifestEntryWithoutBridge) {
  CraftSpec S;
  S.Manifest = "elide_restore\nghost\n";
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditReport R = runChecks(inputFor(*Image), CheckMetadata);
  const Diagnostic *D = findCode(R, AudManifestUnbound);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Warning);
  EXPECT_EQ(D->Symbol, "ghost");
}

//===----------------------------------------------------------------------===//
// AUD3xx -- layout / W^X
//===----------------------------------------------------------------------===//

TEST(LayoutCheckTest, Aud301RequiresWritableTextUnderSgx1Only) {
  CraftSpec S;
  S.TextFlags = SHF_ALLOC | SHF_EXECINSTR; // Ships RX: restore would fault.
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditInput In = inputFor(*Image);

  AuditReport Sgx1 = runChecks(In, CheckLayout, SgxMode::Sgx1);
  const Diagnostic *D = findCode(Sgx1, AudTextNotWritable);
  ASSERT_NE(D, nullptr) << Sgx1.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);

  // The SGX2 ablation: EMODPE opens the pages at restore time instead.
  AuditReport Sgx2 = runChecks(In, CheckLayout, SgxMode::Sgx2);
  EXPECT_EQ(countCode(Sgx2, AudTextNotWritable), 0u) << Sgx2.renderText();
}

TEST(LayoutCheckTest, Aud302FlagsForeignWxSegment) {
  CraftSpec S;
  S.WxSegment = true;
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditReport R = runChecks(inputFor(*Image), CheckLayout);
  const Diagnostic *D = findCode(R, AudWxSegment);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
}

TEST(LayoutCheckTest, Aud303FlagsWritableTextWithNothingElided) {
  CraftSpec S;
  S.Text.clear();
  for (int I = 0; I < 8; ++I)
    emitInstruction(S.Text, instr(Opcode::Nop));
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditInput In;
  In.Image = &*Image; // No regions, no whitelist, nothing zeroed.
  AuditReport R = runChecks(In, CheckLayout);
  const Diagnostic *D = findCode(R, AudWritableNoElision);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
}

TEST(LayoutCheckTest, Aud304FlagsRegionEscapingText) {
  Bytes File = craft({});
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditInput In = inputFor(*Image);
  In.ElidedRegions = {{0x38, 0x100, "runaway_fn"}};
  AuditReport R = runChecks(In, CheckLayout);
  const Diagnostic *D = findCode(R, AudRegionOutsideText);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
  EXPECT_EQ(D->Symbol, "runaway_fn");

  // Offset+Length wraparound must not read as "inside".
  In.ElidedRegions = {{~0ull - 8, 0x10, "wrap_fn"}};
  AuditReport Wrap = runChecks(In, CheckLayout);
  EXPECT_GE(countCode(Wrap, AudRegionOutsideText), 1u) << Wrap.renderText();
}

TEST(LayoutCheckTest, Aud306FlagsInconsistentMeta) {
  Bytes File = craft({});
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();

  AuditInput In = inputFor(*Image);
  AuditMeta Zero;
  Zero.DataLength = 0; // Nothing would be restored.
  Zero.RestoreOffset = 0x10;
  In.Meta = Zero;
  AuditReport R1 = runChecks(In, CheckLayout);
  EXPECT_GE(countCode(R1, AudMetaInconsistent), 1u) << R1.renderText();

  AuditMeta Huge;
  Huge.DataLength = 0x1000;  // Larger than the whole text section.
  Huge.RestoreOffset = 0x40; // And the restore slot is out of range too.
  In.Meta = Huge;
  AuditReport R2 = runChecks(In, CheckLayout);
  EXPECT_EQ(countCode(R2, AudMetaInconsistent), 2u) << R2.renderText();
}

TEST(LayoutCheckTest, Aud307FlagsPartialRestoreSharingPage) {
  Bytes File = craft({});
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditInput In = inputFor(*Image);
  AuditMeta Partial;
  Partial.DataLength = 0x20; // Restores the region, not the whole text.
  Partial.RestoreOffset = 0x10;
  In.Meta = Partial;
  AuditReport R = runChecks(In, CheckLayout);
  const Diagnostic *D = findCode(R, AudRegionSharesPage);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Warning);
  EXPECT_EQ(D->Symbol, "secret_fn");
}

//===----------------------------------------------------------------------===//
// AUD4xx -- pre-restore reachability
//===----------------------------------------------------------------------===//

TEST(ReachabilityCheckTest, Aud401ReportsMissingRestoreEntry) {
  // No manifest at all: advisory only (plain library images are legal).
  CraftSpec NoManifest;
  NoManifest.HaveManifest = false;
  Bytes F1 = craft(NoManifest);
  ASSERT_FALSE(F1.empty());
  Expected<ElfImage> I1 = ElfImage::parse(F1);
  ASSERT_TRUE(static_cast<bool>(I1)) << I1.errorMessage();
  AuditReport R1 = runChecks(inputFor(*I1), CheckReachability);
  const Diagnostic *D1 = findCode(R1, AudRestoreEntryMissing);
  ASSERT_NE(D1, nullptr) << R1.renderText();
  EXPECT_EQ(D1->Sev, Severity::Warning);

  // A manifest that never exports the restorer: hard error.
  CraftSpec NoRestore;
  NoRestore.Manifest = "other_fn\n";
  Bytes F2 = craft(NoRestore);
  ASSERT_FALSE(F2.empty());
  Expected<ElfImage> I2 = ElfImage::parse(F2);
  ASSERT_TRUE(static_cast<bool>(I2)) << I2.errorMessage();
  AuditReport R2 = runChecks(inputFor(*I2), CheckReachability);
  const Diagnostic *D2 = findCode(R2, AudRestoreEntryMissing);
  ASSERT_NE(D2, nullptr) << R2.renderText();
  EXPECT_EQ(D2->Sev, Severity::Error);

  // Manifest exports it but the bridge symbol is gone: the loader cannot
  // bind the ecall.
  CraftSpec NoBridge;
  NoBridge.RestoreSymbols = false;
  Bytes F3 = craft(NoBridge);
  ASSERT_FALSE(F3.empty());
  Expected<ElfImage> I3 = ElfImage::parse(F3);
  ASSERT_TRUE(static_cast<bool>(I3)) << I3.errorMessage();
  AuditReport R3 = runChecks(inputFor(*I3), CheckReachability);
  const Diagnostic *D3 = findCode(R3, AudRestoreEntryMissing);
  ASSERT_NE(D3, nullptr) << R3.renderText();
  EXPECT_EQ(D3->Sev, Severity::Error);
  EXPECT_NE(D3->Message.find("__bridge_elide_restore"), std::string::npos);
}

TEST(ReachabilityCheckTest, Aud402FlagsJumpIntoElidedRegion) {
  CraftSpec S;
  // The restore bridge jumps straight into the zeroed secret body.
  uint8_t Slot[8];
  encodeInstruction(instr(Opcode::Jmp, 0, 0, 0, 0x20), Slot);
  std::copy(Slot, Slot + 8, S.Text.begin());
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditReport R = runChecks(inputFor(*Image), CheckReachability);
  const Diagnostic *D = findCode(R, AudPreRestoreReachesElided);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
  EXPECT_EQ(D->Offset, 0x20u);
  // The diagnostic quotes the disassembled branch that gets there.
  EXPECT_NE(D->Message.find("jmp"), std::string::npos) << D->Message;
  EXPECT_NE(D->Message.find("secret_fn"), std::string::npos) << D->Message;
}

TEST(ReachabilityCheckTest, WalkEndsAtCallToRestore) {
  CraftSpec S;
  // call elide_restore; then jump into the (by then restored) region:
  // legal, because everything after the call runs against restored text.
  uint8_t Slot[8];
  encodeInstruction(instr(Opcode::Jmp, 0, 0, 0, 0x18), Slot);
  std::copy(Slot, Slot + 8, S.Text.begin() + 8);
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditReport R = runChecks(inputFor(*Image), CheckReachability);
  EXPECT_EQ(countCode(R, AudPreRestoreReachesElided), 0u) << R.renderText();
  EXPECT_EQ(R.Errors, 0u) << R.renderText();
}

TEST(ReachabilityCheckTest, Aud403FlagsIndirectCallOnRestorePath) {
  CraftSpec S;
  uint8_t Slot[8];
  encodeInstruction(instr(Opcode::CallR, 0, 5, 0, 0), Slot);
  std::copy(Slot, Slot + 8, S.Text.begin() + 0x10); // elide_restore body.
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditReport R = runChecks(inputFor(*Image), CheckReachability);
  const Diagnostic *D = findCode(R, AudIndirectPreRestore);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Warning);
  EXPECT_EQ(D->Offset, 0x10u);
}

TEST(ReachabilityCheckTest, Aud404FlagsZeroedBridgeBody) {
  CraftSpec S;
  std::fill(S.Text.begin(), S.Text.begin() + 16, 0); // Bridge slots zeroed.
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditReport R = runChecks(inputFor(*Image), CheckReachability);
  const Diagnostic *D = findCode(R, AudBridgeElided);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
  EXPECT_EQ(D->Symbol, "__bridge_elide_restore");
}

TEST(ReachabilityCheckTest, Aud405FlagsFlowLeavingText) {
  CraftSpec S;
  uint8_t Slot[8];
  encodeInstruction(instr(Opcode::Jmp, 0, 0, 0, 0x4000), Slot);
  std::copy(Slot, Slot + 8, S.Text.begin());
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditReport R = runChecks(inputFor(*Image), CheckReachability);
  const Diagnostic *D = findCode(R, AudFlowEscapesText);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
}

//===----------------------------------------------------------------------===//
// CFG builder
//===----------------------------------------------------------------------===//

TEST(CfgTest, SplitsBlocksAtBranchesAndTargets) {
  Bytes Code;
  emitInstruction(Code, instr(Opcode::Bnez, 0, 1, 0, 16)); // 0x1000 -> 0x1010
  emitInstruction(Code, instr(Opcode::Nop));               // 0x1008
  emitInstruction(Code, instr(Opcode::Ret));               // 0x1010
  Cfg G = Cfg::build(BytesView(Code.data(), Code.size()), 0x1000, {0x1000});

  int Entry = G.blockStartingAt(0x1000);
  int Fall = G.blockStartingAt(0x1008);
  int Target = G.blockStartingAt(0x1010);
  ASSERT_GE(Entry, 0);
  ASSERT_GE(Fall, 0);
  ASSERT_GE(Target, 0);
  const CfgBlock &B = G.blocks()[Entry];
  EXPECT_EQ(B.End, 0x1008u);
  EXPECT_EQ(B.Term, Opcode::Bnez);
  ASSERT_TRUE(B.TargetPc.has_value());
  EXPECT_EQ(*B.TargetPc, 0x1010u);
  ASSERT_TRUE(B.FallPc.has_value());
  EXPECT_EQ(*B.FallPc, 0x1008u);
  EXPECT_EQ(B.Succs.size(), 2u);
  EXPECT_EQ(G.blockContaining(0x1008), Fall);
  EXPECT_EQ(G.blocks()[Target].Term, Opcode::Ret);
  EXPECT_TRUE(G.blocks()[Target].Succs.empty());
}

TEST(CfgTest, HostileTargetsBecomeEscapesNotEdges) {
  Bytes Code;
  emitInstruction(Code, instr(Opcode::Jmp, 0, 0, 0, 0x4000)); // Way out.
  Cfg G = Cfg::build(BytesView(Code.data(), Code.size()), 0x1000, {0x1000});
  ASSERT_EQ(G.blocks().size(), 1u);
  EXPECT_TRUE(G.blocks()[0].Succs.empty());
  ASSERT_EQ(G.blocks()[0].EscapeTargets.size(), 1u);
  EXPECT_EQ(G.blocks()[0].EscapeTargets[0], 0x5000u);

  // A misaligned target is an escape too, never a half-slot block.
  Bytes Mis;
  emitInstruction(Mis, instr(Opcode::Jmp, 0, 0, 0, 4));
  emitInstruction(Mis, instr(Opcode::Ret));
  Cfg G2 = Cfg::build(BytesView(Mis.data(), Mis.size()), 0x1000, {0x1000});
  ASSERT_EQ(G2.blocks().size(), 1u);
  ASSERT_EQ(G2.blocks()[0].EscapeTargets.size(), 1u);
  EXPECT_EQ(G2.blocks()[0].EscapeTargets[0], 0x1004u);
}

TEST(CfgTest, MarksCyclesIncludingSelfEdges) {
  Bytes Code;
  emitInstruction(Code, instr(Opcode::Jmp, 0, 0, 0, 0)); // Self-loop.
  emitInstruction(Code, instr(Opcode::Ret));
  Cfg G = Cfg::build(BytesView(Code.data(), Code.size()), 0x1000,
                     {0x1000, 0x1008});
  int Loop = G.blockStartingAt(0x1000);
  int Line = G.blockStartingAt(0x1008);
  ASSERT_GE(Loop, 0);
  ASSERT_GE(Line, 0);
  EXPECT_TRUE(G.inCycle((uint32_t)Loop));
  EXPECT_FALSE(G.inCycle((uint32_t)Line));
}

TEST(CfgTest, ToleratesTruncatedTailsAndBadRoots) {
  Bytes Code;
  emitInstruction(Code, instr(Opcode::Nop));
  Code.resize(Code.size() + 3, 0); // Ragged partial slot at the end.
  Cfg G = Cfg::build(BytesView(Code.data(), Code.size()), 0x1000,
                     {0x1000, 0x1003, 0x9000}); // Bad roots are ignored.
  ASSERT_EQ(G.blocks().size(), 1u);
  EXPECT_EQ(G.limit(), 0x1008u);
  EXPECT_FALSE(G.contains(0x1008));

  Cfg Empty = Cfg::build(BytesView(Code.data(), 0), 0x1000, {0x1000});
  EXPECT_TRUE(Empty.blocks().empty());
  EXPECT_EQ(Empty.blockContaining(0x1000), -1);
}

//===----------------------------------------------------------------------===//
// Taint engine (direct)
//===----------------------------------------------------------------------===//

TEST(TaintTest, AmbientLoadTaintsAndLdiKills) {
  Bytes Code;
  emitInstruction(Code, instr(Opcode::LdBU, 1, 2, 0, 0)); // 0x1000: secret.
  emitInstruction(Code, instr(Opcode::Add, 3, 1, 0, 0));  // 0x1008: spreads.
  emitInstruction(Code, instr(Opcode::LdI, 1, 0, 0, 7));  // 0x1010: kills r1.
  emitInstruction(Code, instr(Opcode::Bnez, 0, 3, 0, 8)); // 0x1018: sink.
  emitInstruction(Code, instr(Opcode::Bnez, 0, 1, 0, 8)); // 0x1020: clean.
  emitInstruction(Code, instr(Opcode::Ret));
  Cfg G = Cfg::build(BytesView(Code.data(), Code.size()), 0x1000, {0x1000});
  TaintOptions TO;
  TO.SecretRanges = {{0x1000, 0x1008}};
  TaintResult R = runTaint(G, TO);
  ASSERT_EQ(R.Sinks.size(), 1u);
  EXPECT_EQ(R.Sinks[0].Kind, SinkKind::Branch);
  EXPECT_EQ(R.Sinks[0].Pc, 0x1018u);
  EXPECT_EQ(R.Sinks[0].Reg, 3u);
  EXPECT_EQ(R.Sinks[0].OriginPc, 0x1000u);
  EXPECT_FALSE(R.Truncated);
}

TEST(TaintTest, HostileLoopTerminatesWithinStepBudget) {
  Bytes Code;
  emitInstruction(Code, instr(Opcode::Add, 1, 1, 2, 0));
  emitInstruction(Code, instr(Opcode::Jmp, 0, 0, 0, -8));
  Cfg G = Cfg::build(BytesView(Code.data(), Code.size()), 0x1000, {0x1000});
  TaintOptions TO;
  TO.SecretRanges = {{0x1000, 0x1010}};
  TaintResult R = runTaint(G, TO);
  // The lattice is finite: the fixpoint converges without the cap.
  EXPECT_FALSE(R.Truncated);
  EXPECT_LT(R.Steps, TO.MaxSteps);
}

//===----------------------------------------------------------------------===//
// Secret-flow checkers (AUD5xx) against crafted leaky images
//===----------------------------------------------------------------------===//

/// Fills secret_fn's slots (text offset 0x20) with up to four live
/// instructions so the flow checkers see real restored code.
CraftSpec leakySpec(std::initializer_list<Instruction> Body) {
  CraftSpec S;
  size_t Off = 0x20;
  for (const Instruction &I : Body) {
    poke(S.Text, Off, I);
    Off += SvmInstrSize;
  }
  return S;
}

AuditReport flowAudit(const CraftSpec &S, unsigned Checks) {
  Bytes File = craft(S);
  EXPECT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  EXPECT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  return runChecks(inputFor(*Image), Checks);
}

TEST(FlowCheckTest, Aud501FlagsSecretDependentBranch) {
  CraftSpec S = leakySpec({instr(Opcode::LdBU, 1, 2, 0, 0),
                           instr(Opcode::Bnez, 0, 1, 0, 8),
                           instr(Opcode::Ret)});
  AuditReport R = flowAudit(S, CheckConstantTime);
  const Diagnostic *D = findCode(R, AudSecretDependentBranch);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
  EXPECT_EQ(D->Offset, 0x28u);
  EXPECT_EQ(D->Symbol, "secret_fn");
  EXPECT_NE(D->Message.find(".text+0x20"), std::string::npos) << D->Message;

  // The CT family is gated by --ct; --taint alone must not emit it.
  AuditReport TaintOnly = flowAudit(S, CheckTaintFlow);
  EXPECT_EQ(countCode(TaintOnly, AudSecretDependentBranch), 0u)
      << TaintOnly.renderText();
}

TEST(FlowCheckTest, Aud502FlagsSecretDependentAddress) {
  CraftSpec S = leakySpec({instr(Opcode::LdBU, 1, 2, 0, 0),
                           instr(Opcode::StB, 0, 1, 3, 0),
                           instr(Opcode::Ret)});
  AuditReport R = flowAudit(S, CheckConstantTime);
  const Diagnostic *D = findCode(R, AudSecretDependentAddress);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
  EXPECT_EQ(D->Offset, 0x28u);
}

TEST(FlowCheckTest, Aud503FlagsEarlyExitCompareLoop) {
  // The classic memcmp shape: load secret byte, compare, branch back.
  CraftSpec S = leakySpec({instr(Opcode::LdBU, 1, 2, 0, 0),
                           instr(Opcode::Seq, 5, 1, 3, 0),
                           instr(Opcode::Bnez, 0, 5, 0, -16),
                           instr(Opcode::Ret)});
  AuditReport R = flowAudit(S, CheckConstantTime);
  const Diagnostic *D = findCode(R, AudTimingDependentCompare);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Warning);
  EXPECT_EQ(D->Offset, 0x30u);
  // The same branch is also a plain secret-dependent branch.
  EXPECT_GE(countCode(R, AudSecretDependentBranch), 1u);
}

TEST(FlowCheckTest, Aud511FlagsTaintedOcallArg) {
  CraftSpec S = leakySpec({instr(Opcode::LdBU, 1, 2, 0, 0),
                           instr(Opcode::Ocall),
                           instr(Opcode::Halt)});
  AuditReport R = flowAudit(S, CheckTaintFlow);
  const Diagnostic *D = findCode(R, AudTaintedOcallArg);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Warning);
  EXPECT_EQ(D->Offset, 0x28u);
  // Taint-flow findings stay out of a --ct-only run.
  AuditReport CtOnly = flowAudit(S, CheckConstantTime);
  EXPECT_EQ(countCode(CtOnly, AudTaintedOcallArg), 0u);
}

TEST(FlowCheckTest, Aud521FlagsSpeculativeDoubleLoadGadget) {
  // SgxPectre shape: branch, then a load whose result addresses a second
  // load inside the speculation window.
  CraftSpec S = leakySpec({instr(Opcode::Bnez, 0, 9, 0, 8),
                           instr(Opcode::LdBU, 1, 2, 0, 0),
                           instr(Opcode::LdBU, 3, 1, 0, 0),
                           instr(Opcode::Ret)});
  AuditReport R = flowAudit(S, CheckTaintFlow);
  const Diagnostic *D = findCode(R, AudSpecGadget);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Warning);
  EXPECT_EQ(D->Offset, 0x30u);
  // The cache-channel twin (AUD502) belongs to --ct, absent here.
  EXPECT_EQ(countCode(R, AudSecretDependentAddress), 0u);
}

TEST(FlowCheckTest, Aud522FlagsTaintedIndirectCall) {
  CraftSpec S = leakySpec({instr(Opcode::LdBU, 1, 2, 0, 0),
                           instr(Opcode::CallR, 0, 1, 0, 0),
                           instr(Opcode::Ret)});
  AuditReport R = flowAudit(S, CheckTaintFlow);
  const Diagnostic *D = findCode(R, AudTaintedIndirectTarget);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Warning);
  EXPECT_EQ(D->Offset, 0x28u);
}

TEST(FlowCheckTest, ConstFoldedKeyAddressIsASource) {
  // Surviving code outside the region loads from a constant address that
  // falls inside it: key-material read through const-prop.
  CraftSpec S;
  S.Text.resize(S.Text.size() + 4 * SvmInstrSize, 0);
  poke(S.Text, 0x40, instr(Opcode::LdI, 2, 0, 0, 0x1020));
  poke(S.Text, 0x48, instr(Opcode::LdBU, 1, 2, 0, 0));
  poke(S.Text, 0x50, instr(Opcode::Bnez, 0, 1, 0, 8));
  poke(S.Text, 0x58, instr(Opcode::Ret));
  S.ExtraFuncs = {{"__bridge_keyuser", 0x1040, 0x20}};
  AuditReport R = flowAudit(S, CheckConstantTime);
  const Diagnostic *D = findCode(R, AudSecretDependentBranch);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Offset, 0x50u);
  EXPECT_NE(D->Message.find(".text+0x48"), std::string::npos) << D->Message;
}

TEST(FlowCheckTest, RestoredViewOverlaySeesThroughZeroedText) {
  // The shipped image is properly elided (zeroed region), but the
  // supplied plaintext -- the restored view -- contains the leak.
  Bytes Restored = defaultText();
  poke(Restored, 0x20, instr(Opcode::LdBU, 1, 2, 0, 0));
  poke(Restored, 0x28, instr(Opcode::Bnez, 0, 1, 0, 8));
  poke(Restored, 0x30, instr(Opcode::Ret));

  Bytes File = craft({});
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditInput In = inputFor(*Image);

  // Without the plaintext the elided range is zeroed: vacuously clean.
  EXPECT_TRUE(runChecks(In, CheckConstantTime | CheckTaintFlow).clean());

  In.SecretPlaintext = Restored;
  AuditReport R = runChecks(In, CheckConstantTime);
  EXPECT_GE(countCode(R, AudSecretDependentBranch), 1u) << R.renderText();
}

//===----------------------------------------------------------------------===//
// Orderliness checkers (AUD6xx)
//===----------------------------------------------------------------------===//

AuditReport orderAudit(const CraftSpec &S,
                       std::initializer_list<std::string> ExtraWhitelist = {}) {
  Bytes File = craft(S);
  EXPECT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  EXPECT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditInput In = inputFor(*Image);
  for (const std::string &W : ExtraWhitelist)
    In.WhitelistNames.insert(W);
  return runChecks(In, CheckOrderliness);
}

TEST(OrderlinessCheckTest, Aud601FlagsEntryAdmittingRedactedPath) {
  // A well-shaped whitelisted bridge whose body jumps into the elided
  // region without calling elide_restore first.
  CraftSpec S;
  S.Text.resize(S.Text.size() + 3 * SvmInstrSize, 0);
  poke(S.Text, 0x40, instr(Opcode::Call, 0, 0, 0, 16)); // -> 0x1050
  poke(S.Text, 0x48, instr(Opcode::Halt));
  poke(S.Text, 0x50, instr(Opcode::Jmp, 0, 0, 0, -0x30)); // -> 0x1020
  S.ExtraFuncs = {{"__bridge_init", 0x1040, 16}};
  AuditReport R = orderAudit(S, {"init"});
  const Diagnostic *D = findCode(R, AudPreRestoreEntersRedacted);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
  // One verdict per entry, anchored at the entry itself.
  EXPECT_EQ(D->Offset, 0x40u);
  EXPECT_EQ(D->Symbol, "__bridge_init");
  EXPECT_NE(D->Message.find("secret_fn"), std::string::npos) << D->Message;
  EXPECT_NE(D->Message.find("0x20"), std::string::npos) << D->Message;
  EXPECT_EQ(countCode(R, AudBridgeContract), 0u) << R.renderText();
}

TEST(OrderlinessCheckTest, PathThroughRestoreCallIsOrderly) {
  // After `call elide_restore` the text is restored; a jump into the
  // region beyond that call is the intended post-restore flow.
  CraftSpec S;
  S.Text.resize(S.Text.size() + 4 * SvmInstrSize, 0);
  poke(S.Text, 0x40, instr(Opcode::Call, 0, 0, 0, 16));    // -> 0x1050
  poke(S.Text, 0x48, instr(Opcode::Halt));
  poke(S.Text, 0x50, instr(Opcode::Call, 0, 0, 0, -0x40)); // elide_restore
  poke(S.Text, 0x58, instr(Opcode::Jmp, 0, 0, 0, -0x38));  // -> 0x1020
  S.ExtraFuncs = {{"__bridge_init", 0x1040, 16}};
  AuditReport R = orderAudit(S, {"init"});
  EXPECT_EQ(countCode(R, AudPreRestoreEntersRedacted), 0u) << R.renderText();
  EXPECT_EQ(R.Errors, 0u) << R.renderText();
}

TEST(OrderlinessCheckTest, Aud602FlagsPreRestoreOcall) {
  CraftSpec S;
  S.Text.resize(S.Text.size() + 4 * SvmInstrSize, 0);
  poke(S.Text, 0x40, instr(Opcode::Call, 0, 0, 0, 16)); // -> 0x1050
  poke(S.Text, 0x48, instr(Opcode::Halt));
  poke(S.Text, 0x50, instr(Opcode::Ocall));
  poke(S.Text, 0x58, instr(Opcode::Ret));
  S.ExtraFuncs = {{"__bridge_init", 0x1040, 16}};
  AuditReport R = orderAudit(S, {"init"});
  const Diagnostic *D = findCode(R, AudPreRestoreOcall);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Warning);
  EXPECT_EQ(D->Offset, 0x50u);
  EXPECT_EQ(D->Symbol, "__bridge_init");
}

TEST(OrderlinessCheckTest, RestoreExchangeOcallIsExempt) {
  // elide_restore itself must ocall (it fetches the provisioning blob);
  // that is the restore exchange, not a pre-restore leak.
  CraftSpec S;
  poke(S.Text, 0x10, instr(Opcode::Ocall));
  AuditReport R = orderAudit(S);
  EXPECT_EQ(countCode(R, AudPreRestoreOcall), 0u) << R.renderText();
}

TEST(OrderlinessCheckTest, Aud603FlagsMalformedBridge) {
  CraftSpec S;
  poke(S.Text, 0x00, instr(Opcode::Nop)); // Bridge is `nop; halt`.
  AuditReport R = orderAudit(S);
  const Diagnostic *D = findCode(R, AudBridgeContract);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
  EXPECT_EQ(D->Offset, 0x0u);
  EXPECT_EQ(D->Symbol, "__bridge_elide_restore");
}

TEST(OrderlinessCheckTest, Aud604FlagsRestoreReentry) {
  // elide_restore's body calls itself: the static AlreadyLoaded hazard.
  CraftSpec S;
  poke(S.Text, 0x10, instr(Opcode::Call, 0, 0, 0, 0));
  AuditReport R = orderAudit(S);
  const Diagnostic *D = findCode(R, AudRestoreReentry);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
  EXPECT_EQ(D->Offset, 0x10u);
  EXPECT_NE(D->Message.find("call"), std::string::npos) << D->Message;
  // The call is stepped over, so the function still completes (no 605).
  EXPECT_EQ(countCode(R, AudRestoreIncompletable), 0u) << R.renderText();
}

TEST(OrderlinessCheckTest, Aud605FlagsIncompletableRestore) {
  CraftSpec S;
  poke(S.Text, 0x10, instr(Opcode::Jmp, 0, 0, 0, 0)); // Spin forever.
  AuditReport R = orderAudit(S);
  const Diagnostic *D = findCode(R, AudRestoreIncompletable);
  ASSERT_NE(D, nullptr) << R.renderText();
  EXPECT_EQ(D->Sev, Severity::Error);
  EXPECT_EQ(D->Offset, 0x10u);
  EXPECT_EQ(D->Symbol, "elide_restore");
}

//===----------------------------------------------------------------------===//
// Whole-audit behavior
//===----------------------------------------------------------------------===//

TEST(AuditTest, CleanCraftedImageProducesNoDiagnostics) {
  Bytes File = craft({});
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditReport R = runChecks(inputFor(*Image), CheckAll);
  EXPECT_TRUE(R.clean()) << R.renderText();
}

TEST(AuditTest, CleanImageStaysCleanUnderEveryChecker) {
  // The elided region is zeroed and the restore protocol well-formed, so
  // even the opt-in flow families have nothing to say.
  Bytes File = craft({});
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditReport R = runChecks(inputFor(*Image), CheckEverything);
  EXPECT_TRUE(R.clean()) << R.renderText();
}

TEST(AuditTest, JsonCarriesVersionAndSelectedFamilies) {
  Bytes File = craft({});
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();

  for (unsigned Checks : {(unsigned)CheckAll, (unsigned)CheckEverything,
                          (unsigned)(CheckConstantTime | CheckTaintFlow)}) {
    AuditReport R = runChecks(inputFor(*Image), Checks);
    std::string Json = R.renderJson();
    EXPECT_NE(Json.find("\"version\":2"), std::string::npos);

    // Round-trip: the families array in the JSON must spell exactly the
    // families the mask selected, in checker order.
    std::vector<std::string> Fams = checkFamilyNames(Checks);
    std::string Expect = "\"families\":[";
    for (size_t I = 0; I < Fams.size(); ++I)
      Expect += (I ? ",\"" : "\"") + Fams[I] + "\"";
    Expect += "]";
    EXPECT_NE(Json.find(Expect), std::string::npos) << Json;
  }

  std::vector<std::string> All = checkFamilyNames(CheckEverything);
  ASSERT_EQ(All.size(), 7u);
  EXPECT_EQ(All[4], "constant-time");
  EXPECT_EQ(All[5], "taint-flow");
  EXPECT_EQ(All[6], "orderliness");
  // The default gate excludes the opt-in flow policies.
  std::vector<std::string> Default = checkFamilyNames(CheckAll);
  ASSERT_EQ(Default.size(), 5u);
  EXPECT_EQ(Default[4], "orderliness");
}

TEST(AuditTest, DetectsAllFourSeededLeakClassesAtOnce) {
  CraftSpec S;
  uint8_t Slot[8];
  // Reachability leak: the bridge jumps into the elided region.
  encodeInstruction(instr(Opcode::Jmp, 0, 0, 0, 0x20), Slot);
  std::copy(Slot, Slot + 8, S.Text.begin());
  // Residual leak: the "elided" slots still hold their code.
  for (int I = 0; I < 4; ++I) {
    encodeInstruction(instr(Opcode::LdI, 1, 0, 0, 0x5000 + I), Slot);
    std::copy(Slot, Slot + 8, S.Text.begin() + 0x20 + I * 8);
  }
  // Metadata leak: the symbol naming the secret survives.
  S.ExtraFuncs = {{"secret_fn", 0x1020, 0x20}};
  // Layout leak: text ships read-execute, so SGX1 restoration faults.
  S.TextFlags = SHF_ALLOC | SHF_EXECINSTR;

  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditReport R = runChecks(inputFor(*Image), CheckAll);
  EXPECT_GE(countCode(R, AudResidualSecretBytes), 1u) << R.renderText();
  EXPECT_GE(countCode(R, AudElidedSymbolNamed), 1u) << R.renderText();
  EXPECT_GE(countCode(R, AudTextNotWritable), 1u) << R.renderText();
  EXPECT_GE(countCode(R, AudPreRestoreReachesElided), 1u) << R.renderText();
  EXPECT_GE(R.Errors, 4u);
}

TEST(AuditTest, BaselineSuppressesKnownFindings) {
  CraftSpec S;
  S.ExtraFuncs = {{"secret_fn", 0x1020, 0x20}};
  Bytes File = craft(S);
  ASSERT_FALSE(File.empty());
  Expected<ElfImage> Image = ElfImage::parse(File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditInput In = inputFor(*Image);

  AuditReport First = runChecks(In, CheckAll);
  ASSERT_FALSE(First.clean());
  Expected<Baseline> B = Baseline::parse(First.renderBaseline());
  ASSERT_TRUE(static_cast<bool>(B)) << B.errorMessage();

  AuditOptions Opts;
  Opts.Suppressions = &*B;
  AuditReport Second = runAudit(In, Opts);
  EXPECT_TRUE(Second.clean()) << Second.renderText();
  EXPECT_EQ(Second.Suppressed, First.Diags.size());
}

//===----------------------------------------------------------------------===//
// Sanitizer / ELF fixes the audit motivated
//===----------------------------------------------------------------------===//

TEST(ScrubSymbolsTest, RedactsEntriesAndUnreferencedNames) {
  ElfBuilder B;
  Bytes Text;
  for (int I = 0; I < 8; ++I)
    emitInstruction(Text, instr(Opcode::Nop));
  size_t TextIdx =
      B.addProgbits(".text", 0x1000, Text, SHF_ALLOC | SHF_EXECINSTR);
  B.addSymbol("keep_me", 0x1000, 32, STT_FUNC, TextIdx);
  B.addSymbol("drop_me", 0x1020, 32, STT_FUNC, TextIdx);
  Expected<Bytes> File = B.build();
  ASSERT_TRUE(static_cast<bool>(File)) << File.errorMessage();
  Expected<ElfImage> Image = ElfImage::parse(*File);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();

  Expected<size_t> Scrubbed = Image->scrubSymbols({"drop_me"});
  ASSERT_TRUE(static_cast<bool>(Scrubbed)) << Scrubbed.errorMessage();
  EXPECT_EQ(*Scrubbed, 1u);
  EXPECT_EQ(Image->symbolByName("drop_me"), nullptr);
  const ElfSymbol *Kept = Image->symbolByName("keep_me");
  ASSERT_NE(Kept, nullptr);
  EXPECT_EQ(Kept->Value, 0x1000u);

  // The name must not outlive the symbol, and survivors must keep theirs.
  std::string Raw(Image->fileBytes().begin(), Image->fileBytes().end());
  EXPECT_EQ(Raw.find("drop_me"), std::string::npos);
  EXPECT_NE(Raw.find("keep_me"), std::string::npos);

  // Scrubbing a name that is not there is a no-op, not an error.
  Expected<size_t> Again = Image->scrubSymbols({"absent"});
  ASSERT_TRUE(static_cast<bool>(Again)) << Again.errorMessage();
  EXPECT_EQ(*Again, 0u);
}

//===----------------------------------------------------------------------===//
// Pipeline integration: zero false positives on real images
//===----------------------------------------------------------------------===//

const char ScoreSource[] = R"elc(
fn magic_score(x: u64) -> u64 {
  return (x * 2654435761) % 1000000007;
}

export fn score(inp: *u8, inlen: u64, outp: *u8, outcap: u64) -> u64 {
  if (inlen < 8 || outcap < 8) {
    return 1;
  }
  store_le64(outp, magic_score(load_le64(inp)));
  return 0;
}
)elc";

Ed25519KeyPair testVendor() {
  Drbg Rng(42);
  Ed25519Seed Seed{};
  Rng.fill(MutableBytesView(Seed.data(), Seed.size()));
  return ed25519KeyPairFromSeed(Seed);
}

TEST(AuditPipelineTest, SanitizedImagesAuditCleanInBothStorageModes) {
  for (SecretStorage Storage :
       {SecretStorage::Remote, SecretStorage::Local}) {
    SCOPED_TRACE(Storage == SecretStorage::Remote ? "Remote" : "Local");
    BuildOptions Opts;
    Opts.Storage = Storage;
    Expected<BuildArtifacts> A = buildProtectedEnclave(
        {{"score.elc", ScoreSource}}, testVendor(), Opts);
    ASSERT_TRUE(static_cast<bool>(A)) << A.errorMessage();
    // The pipeline self-audit already gates on errors; warnings and notes
    // must be absent too -- the shipped examples are the zero-FP bar.
    EXPECT_TRUE(A->Audit.clean()) << A->Audit.renderText();

    // Re-audit the artifact the way the standalone CLI would: no build
    // facts beyond whitelist + meta, regions recovered from the image.
    Expected<ElfImage> Image = ElfImage::parse(A->SanitizedElf);
    ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
    Bytes Plaintext = A->SecretData;
    if (Storage == SecretStorage::Local) {
      Expected<ElfImage> Plain = ElfImage::parse(A->PlainElf);
      ASSERT_TRUE(static_cast<bool>(Plain)) << Plain.errorMessage();
      const ElfSection *Text = Plain->sectionByName(".text");
      ASSERT_NE(Text, nullptr);
      Plaintext = Plain->sectionContents(*Text);
    }
    AuditInput In =
        auditInputFor(*Image, {}, A->Keep, A->Meta, Plaintext);
    AuditReport R = runAudit(In, AuditOptions());
    EXPECT_TRUE(R.clean()) << R.renderText();
  }
}

TEST(AuditPipelineTest, UnsanitizedImageIsCaughtByTheAudit) {
  BuildOptions Opts;
  Expected<BuildArtifacts> A = buildProtectedEnclave(
      {{"score.elc", ScoreSource}}, testVendor(), Opts);
  ASSERT_TRUE(static_cast<bool>(A)) << A.errorMessage();

  // Audit the *plain* image against the same whitelist: every class of
  // metadata the sanitizer removes is still present here.
  Expected<ElfImage> Image = ElfImage::parse(A->PlainElf);
  ASSERT_TRUE(static_cast<bool>(Image)) << Image.errorMessage();
  AuditInput In;
  In.Image = &*Image;
  In.WhitelistNames = A->Keep.names();
  In.HaveWhitelist = true;
  AuditReport R = runAudit(In, AuditOptions());
  EXPECT_GE(R.Errors, 1u);
  EXPECT_GE(countCode(R, AudElidedSymbolNamed), 1u) << R.renderText();
}

TEST(AuditPipelineTest, FlowAuditGateRefusesLeakySecrets) {
  // The early-exit PIN compare: a secret that leaks through timing.
  const char Leaky[] = R"elc(
fn check_pin(inp: *u8, inlen: u64) -> u64 {
  var i: u64 = 0;
  while (i < 4) {
    if (inp[i] != ((i * 7 + 49) as u8)) {
      return 0;
    }
    i = i + 1;
  }
  return 1;
}

export fn unlock(inp: *u8, inlen: u64, outp: *u8, outcap: u64) -> u64 {
  if (outcap < 1) {
    return 1;
  }
  outp[0] = check_pin(inp, inlen) as u8;
  return 0;
}
)elc";

  // Without the opt-in flow audit the build ships it...
  BuildOptions Opts;
  Expected<BuildArtifacts> A =
      buildProtectedEnclave({{"pin.elc", Leaky}}, testVendor(), Opts);
  ASSERT_TRUE(static_cast<bool>(A)) << A.errorMessage();

  // ...with --audit-flow the self-audit refuses, naming the leak class.
  Opts.FlowAudit = true;
  Expected<BuildArtifacts> B =
      buildProtectedEnclave({{"pin.elc", Leaky}}, testVendor(), Opts);
  ASSERT_FALSE(static_cast<bool>(B));
  EXPECT_NE(B.errorMessage().find("AUD501"), std::string::npos)
      << B.errorMessage();

  // The well-behaved example passes the same gate (no false positives).
  Opts.FlowAudit = true;
  Expected<BuildArtifacts> C = buildProtectedEnclave(
      {{"score.elc", ScoreSource}}, testVendor(), Opts);
  EXPECT_TRUE(static_cast<bool>(C)) << C.errorMessage();
}

TEST(AuditPipelineTest, CompilerRejectsReservedBridgePrefix) {
  const char Evil[] = R"elc(
fn __bridge_evil() -> u64 {
  return 1;
}

export fn entry(inp: *u8, inlen: u64, outp: *u8, outcap: u64) -> u64 {
  return __bridge_evil();
}
)elc";
  BuildOptions Opts;
  Expected<BuildArtifacts> A =
      buildProtectedEnclave({{"evil.elc", Evil}}, testVendor(), Opts);
  ASSERT_FALSE(static_cast<bool>(A));
  EXPECT_NE(A.errorMessage().find("reserved"), std::string::npos)
      << A.errorMessage();
}

} // namespace
