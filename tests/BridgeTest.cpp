//===- tests/BridgeTest.cpp - Ecall/ocall bridge semantics --------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The enclave boundary's copy discipline: buffers move across it only by
/// explicit bridge copies, with bounds enforced on both directions --
/// the "bridge functions automatically handle copying the contents of
/// buffers across the enclave boundary" behavior from the paper's
/// background section.
///
//===----------------------------------------------------------------------===//

#include "elide/HostRuntime.h"
#include "elide/Pipeline.h"
#include "sgx/EnclaveLoader.h"

#include <gtest/gtest.h>

using namespace elide;

namespace {

/// An enclave exercising the boundary: echoes input, calls an app ocall,
/// reports sizes.
const char *BridgeSource = R"elc(
extern ocall fn elide_read_file(req: *u8, reqlen: u64, resp: *u8, cap: u64) -> u64;

export fn echo(inp: *u8, inlen: u64, outp: *u8, outcap: u64) -> u64 {
  var n: u64 = inlen;
  if (n > outcap) {
    n = outcap;
  }
  memcpy8(outp, inp, n);
  return n;
}

export fn oversize_ocall(inp: *u8, inlen: u64, outp: *u8, outcap: u64) -> u64 {
  // Asks the host for a file but offers a 4-byte response window; the
  // bridge must reject an oversized host response.
  var tiny: u8[4];
  return elide_read_file(inp, 0, &tiny[0], 4);
}
)elc";

struct Fixture {
  std::unique_ptr<sgx::SgxDevice> Device;
  std::unique_ptr<sgx::Enclave> E;
  std::unique_ptr<ElideHost> Host;

  static Fixture make() {
    Fixture F;
    Drbg Rng(606);
    Ed25519Seed Seed{};
    Rng.fill(MutableBytesView(Seed.data(), 32));
    Ed25519KeyPair Vendor = ed25519KeyPairFromSeed(Seed);
    Expected<BuildArtifacts> A = buildProtectedEnclave(
        {{"bridge.elc", BridgeSource}}, Vendor, {});
    EXPECT_TRUE(static_cast<bool>(A)) << A.errorMessage();
    F.Device = std::make_unique<sgx::SgxDevice>(1);
    Expected<std::unique_ptr<sgx::Enclave>> E = sgx::loadEnclave(
        *F.Device, A->PlainElf, A->PlainSig, sgx::EnclaveLayout{});
    EXPECT_TRUE(static_cast<bool>(E)) << E.errorMessage();
    F.E = E.takeValue();
    F.Host = std::make_unique<ElideHost>(nullptr, nullptr);
    F.Host->attach(*F.E);
    return F;
  }
};

TEST(BridgeSemanticsTest, EchoCopiesBothDirections) {
  Fixture F = Fixture::make();
  Bytes In = bytesOfString("across the boundary and back");
  Expected<sgx::EcallResult> R = F.E->ecall("echo", In, In.size());
  ASSERT_TRUE(static_cast<bool>(R));
  ASSERT_TRUE(R->ok()) << R->Exec.Message;
  EXPECT_EQ(R->status(), In.size());
  EXPECT_EQ(R->Output, In);
}

TEST(BridgeSemanticsTest, OutputWindowIsClearedBetweenEcalls) {
  Fixture F = Fixture::make();
  Bytes Long = bytesOfString("AAAAAAAAAAAAAAAA");
  ASSERT_TRUE(static_cast<bool>(F.E->ecall("echo", Long, Long.size())));
  // A shorter echo with a larger output capacity: the tail must be
  // zeros, not residue from the previous call.
  Bytes Short = bytesOfString("bb");
  Expected<sgx::EcallResult> R = F.E->ecall("echo", Short, 16);
  ASSERT_TRUE(static_cast<bool>(R));
  ASSERT_TRUE(R->ok());
  EXPECT_EQ(R->Output[0], 'b');
  EXPECT_EQ(R->Output[1], 'b');
  for (size_t I = 2; I < 16; ++I)
    EXPECT_EQ(R->Output[I], 0) << "stale bridge data leaked at " << I;
}

TEST(BridgeSemanticsTest, UnknownEcallIsRejected) {
  Fixture F = Fixture::make();
  Expected<sgx::EcallResult> R = F.E->ecall("no_such_entry", {}, 0);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.errorMessage().find("no ecall"), std::string::npos);
}

TEST(BridgeSemanticsTest, OversizedBuffersAreRejected) {
  Fixture F = Fixture::make();
  // Input + output larger than the bridge arena must be refused up
  // front, not corrupt enclave memory.
  Bytes Huge(1 << 20, 0);
  Expected<sgx::EcallResult> R = F.E->ecall("echo", Huge, 16);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.errorMessage().find("arena"), std::string::npos);
}

TEST(BridgeSemanticsTest, OversizedOcallResponseFaults) {
  Fixture F = Fixture::make();
  // Host serves a 100-byte "file"; the enclave offered a 4-byte window.
  F.Host->setSecretDataFile(Bytes(100, 0x55));
  Expected<sgx::EcallResult> R = F.E->ecall("oversize_ocall", {}, 0);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->Exec.Kind, TrapKind::HandlerFault);
  EXPECT_NE(R->Exec.Message.find("exceeds"), std::string::npos);
}

TEST(BridgeSemanticsTest, DebugPrintSuppressedForProductionEnclaves) {
  // Build the same enclave without the debug attribute: t_debug_print
  // must become a no-op (no leak channel).
  Drbg Rng(607);
  Ed25519Seed Seed{};
  Rng.fill(MutableBytesView(Seed.data(), 32));
  Ed25519KeyPair Vendor = ed25519KeyPairFromSeed(Seed);
  const char *Src = R"elc(
export fn talk(inp: *u8, inlen: u64, outp: *u8, outcap: u64) -> u64 {
  print_str("this must not escape\n");
  return 0;
}
)elc";
  for (uint64_t Attrs : {uint64_t{sgx::AttrDebug}, uint64_t{0}}) {
    BuildOptions Options;
    Options.Attributes = Attrs;
    Expected<BuildArtifacts> A =
        buildProtectedEnclave({{"talk.elc", Src}}, Vendor, Options);
    ASSERT_TRUE(static_cast<bool>(A)) << A.errorMessage();
    sgx::SgxDevice Device(9);
    Expected<std::unique_ptr<sgx::Enclave>> E = sgx::loadEnclave(
        Device, A->PlainElf, A->PlainSig, Options.Layout);
    ASSERT_TRUE(static_cast<bool>(E));
    ElideHost Host(nullptr, nullptr);
    Host.attach(**E);
    Expected<sgx::EcallResult> R = (*E)->ecall("talk", {}, 0);
    ASSERT_TRUE(static_cast<bool>(R));
    ASSERT_TRUE(R->ok()) << R->Exec.Message;
    if (Attrs & sgx::AttrDebug)
      EXPECT_NE(Host.debugOutput().find("must not escape"),
                std::string::npos);
    else
      EXPECT_TRUE(Host.debugOutput().empty())
          << "production enclave leaked debug output";
  }
}

} // namespace
