//===- apps/Sha1App.cpp - The SHA-1 benchmark (RFC 3174 port) --------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "apps/AppUtil.h"

#include "crypto/Drbg.h"
#include "support/Hex.h"

#include <cstring>

using namespace elide;
using namespace elide::apps;

namespace {

const char *Sha1Algorithm = R"elc(
// SHA-1 (RFC 3174), message padded and hashed inside the enclave.

var sha1_msg: u8[4480];
var sha1_h: u64[5];

fn sha1_process(block: *u8) {
  var w: u64[80];
  for (var t: u64 = 0; t < 16; t = t + 1) {
    w[t] = load_be32(block + 4 * t);
  }
  for (var t: u64 = 16; t < 80; t = t + 1) {
    w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }
  var a: u64 = sha1_h[0];
  var b: u64 = sha1_h[1];
  var c: u64 = sha1_h[2];
  var d: u64 = sha1_h[3];
  var e: u64 = sha1_h[4];
  for (var t: u64 = 0; t < 80; t = t + 1) {
    var f: u64 = 0;
    var k: u64 = 0;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5a827999;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    var temp: u64 = (rotl32(a, 5) + f + e + k + w[t]) & 0xffffffff;
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  sha1_h[0] = (sha1_h[0] + a) & 0xffffffff;
  sha1_h[1] = (sha1_h[1] + b) & 0xffffffff;
  sha1_h[2] = (sha1_h[2] + c) & 0xffffffff;
  sha1_h[3] = (sha1_h[3] + d) & 0xffffffff;
  sha1_h[4] = (sha1_h[4] + e) & 0xffffffff;
}

fn sha1_pad(len: u64) -> u64 {
  sha1_msg[len] = 0x80;
  var padded: u64 = len + 1;
  while (padded % 64 != 56) {
    sha1_msg[padded] = 0;
    padded = padded + 1;
  }
  var bits: u64 = len * 8;
  store_be32(&sha1_msg[padded], bits >> 32);
  store_be32(&sha1_msg[padded + 4], bits & 0xffffffff);
  return padded + 8;
}

// Ecall: input = message (up to 4096 bytes), output = 20-byte digest.
export fn sha1_run(inp: *u8, inlen: u64, outp: *u8, outcap: u64) -> u64 {
  if (inlen > 4096) {
    return 1;
  }
  if (outcap < 20) {
    return 2;
  }
  memcpy8(&sha1_msg[0], inp, inlen);
  var total: u64 = sha1_pad(inlen);
  sha1_h[0] = 0x67452301;
  sha1_h[1] = 0xefcdab89;
  sha1_h[2] = 0x98badcfe;
  sha1_h[3] = 0x10325476;
  sha1_h[4] = 0xc3d2e1f0;
  for (var off: u64 = 0; off < total; off = off + 64) {
    sha1_process(&sha1_msg[off]);
  }
  for (var i: u64 = 0; i < 5; i = i + 1) {
    store_be32(outp + 4 * i, sha1_h[i]);
  }
  return 0;
}
)elc";

/// Host-side SHA-1 oracle (kept deliberately independent of the Elc code).
void hostSha1(BytesView Message, uint8_t Digest[20]) {
  uint32_t H[5] = {0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476,
                   0xc3d2e1f0};
  Bytes Padded(Message.begin(), Message.end());
  Padded.push_back(0x80);
  while (Padded.size() % 64 != 56)
    Padded.push_back(0);
  uint64_t Bits = static_cast<uint64_t>(Message.size()) * 8;
  for (int I = 7; I >= 0; --I)
    Padded.push_back(static_cast<uint8_t>(Bits >> (8 * I)));

  auto Rotl = [](uint32_t X, int N) { return (X << N) | (X >> (32 - N)); };
  for (size_t Off = 0; Off < Padded.size(); Off += 64) {
    uint32_t W[80];
    for (int T = 0; T < 16; ++T)
      W[T] = readBE32(Padded.data() + Off + 4 * T);
    for (int T = 16; T < 80; ++T)
      W[T] = Rotl(W[T - 3] ^ W[T - 8] ^ W[T - 14] ^ W[T - 16], 1);
    uint32_t A = H[0], B = H[1], C = H[2], D = H[3], E = H[4];
    for (int T = 0; T < 80; ++T) {
      uint32_t F, K;
      if (T < 20) {
        F = (B & C) | (~B & D);
        K = 0x5a827999;
      } else if (T < 40) {
        F = B ^ C ^ D;
        K = 0x6ed9eba1;
      } else if (T < 60) {
        F = (B & C) | (B & D) | (C & D);
        K = 0x8f1bbcdc;
      } else {
        F = B ^ C ^ D;
        K = 0xca62c1d6;
      }
      uint32_t Temp = Rotl(A, 5) + F + E + K + W[T];
      E = D;
      D = C;
      C = Rotl(B, 30);
      B = A;
      A = Temp;
    }
    H[0] += A;
    H[1] += B;
    H[2] += C;
    H[3] += D;
    H[4] += E;
  }
  for (int I = 0; I < 5; ++I)
    writeBE32(Digest + 4 * I, H[I]);
}

Error sha1Workload(sgx::Enclave &E) {
  // RFC 3174 test cases.
  struct Kat {
    const char *Message;
    const char *Digest;
  };
  const Kat Kats[] = {
      {"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
      {"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
      {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
  };
  for (const Kat &V : Kats) {
    Bytes Msg = bytesOfString(V.Message);
    ELIDE_TRY(Bytes Digest, runEcall(E, "sha1_run", Msg, 20));
    if (toHex(Digest) != V.Digest)
      return makeError(std::string("SHA1 enclave failed KAT for '") +
                       V.Message + "': " + toHex(Digest));
  }

  // Lengths straddling the padding boundaries, checked against the host
  // oracle.
  Drbg Rng(0x5a1);
  for (size_t Len : {0u, 1u, 55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u, 1000u,
                     4096u}) {
    Bytes Msg = Rng.bytes(Len);
    ELIDE_TRY(Bytes Digest, runEcall(E, "sha1_run", Msg, 20));
    uint8_t Expect[20];
    hostSha1(Msg, Expect);
    if (std::memcmp(Digest.data(), Expect, 20) != 0)
      return makeError("SHA1 enclave disagrees with the oracle at length " +
                       std::to_string(Len));
  }
  return Error::success();
}

} // namespace

AppSpec apps::makeSha1App() {
  AppSpec Spec;
  Spec.Name = "Sha1";
  Spec.TrustedSources = {{"sha1.elc", Sha1Algorithm}};
  Spec.RunWorkload = sha1Workload;
  Spec.IsGame = false;
  Spec.FigureScale = 10;
  return Spec;
}
