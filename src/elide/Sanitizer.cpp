//===- elide/Sanitizer.cpp - Enclave sanitization --------------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "elide/Sanitizer.h"

#include "elf/ElfImage.h"

#include <cstring>

using namespace elide;

namespace {

/// Shared tail of both sanitizer modes: package the secret bytes
/// (encrypting in Local mode) and build the metadata.
Expected<SanitizedEnclave> packageSecrets(ElfImage Image, Bytes SecretBytes,
                                          uint64_t RestoreOffset,
                                          SecretStorage Storage, Drbg &Rng,
                                          SanitizerReport Report) {
  SanitizedEnclave Out;
  Out.Report = Report;
  Out.Meta.DataLength = SecretBytes.size();
  Out.Meta.RestoreOffset = RestoreOffset;

  if (Storage == SecretStorage::Local) {
    // Local mode: the data ships with the enclave, so it must be
    // encrypted; the key travels only in the metadata, held by the server.
    Out.Meta.Encrypted = true;
    Rng.fill(MutableBytesView(Out.Meta.Key.data(), Out.Meta.Key.size()));
    Rng.fill(MutableBytesView(Out.Meta.Iv.data(), Out.Meta.Iv.size()));
    ELIDE_TRY(GcmSealed Sealed,
              aesGcmEncrypt(BytesView(Out.Meta.Key.data(), 16),
                            BytesView(Out.Meta.Iv.data(), 12), SecretBytes,
                            BytesView()));
    Out.Meta.Mac = Sealed.Tag;
    Out.SecretData = std::move(Sealed.Ciphertext);
  } else {
    // Remote mode: the plaintext stays with the server.
    Out.Meta.Encrypted = false;
    Out.SecretData = std::move(SecretBytes);
  }

  Out.SanitizedElf = Image.fileBytes();
  return Out;
}

/// Finds the executable PT_LOAD segment covering the text section.
Expected<size_t> findTextSegment(const ElfImage &Image,
                                 const ElfSection &Text) {
  for (size_t I = 0; I < Image.segments().size(); ++I) {
    const ElfSegment &Seg = Image.segments()[I];
    if (Seg.Type == PT_LOAD && Text.Addr >= Seg.VAddr &&
        Text.Addr + Text.Size <= Seg.VAddr + Seg.MemSize)
      return I;
  }
  return makeError("no loadable segment covers the text section");
}

} // namespace

Expected<SanitizedEnclave> elide::sanitizeEnclave(BytesView ElfFile,
                                                  const Whitelist &Keep,
                                                  SecretStorage Storage,
                                                  Drbg &Rng) {
  ELIDE_TRY(ElfImage Image, ElfImage::parse(toBytes(ElfFile)));

  const ElfSection *Text = Image.sectionByName(".text");
  if (!Text)
    return makeError(SanitizerErrcNoText, "enclave image has no .text section");

  // The runtime restorer must itself be present (it is framework code
  // from the dummy enclave).
  const ElfSymbol *Restore = Image.symbolByName("elide_restore");
  if (!Restore)
    return makeError(SanitizerErrcNoRuntime,
                     "enclave was not linked with the SgxElide runtime "
                     "(no elide_restore symbol)");
  if (!Keep.contains("elide_restore"))
    return makeError("whitelist does not preserve elide_restore; refusing "
                     "to produce an unrestorable enclave");

  // Save the original text section before redaction.
  Bytes OriginalText = Image.sectionContents(*Text);

  SanitizerReport Report;
  Report.TextBytes = OriginalText.size();

  // Enumerate every function in the shared object; zero the body of each
  // one that is not on the whitelist.
  std::vector<SecretRegion> Regions;
  std::set<std::string> Doomed;
  for (const ElfSymbol &Sym : Image.symbols()) {
    if (!Sym.isFunction())
      continue;
    ++Report.TotalFunctions;
    if (Keep.contains(Sym.Name))
      continue;
    Doomed.insert(Sym.Name); // Even a zero-size function's name leaks.
    if (Sym.Size == 0)
      continue;
    if (Error E = Image.zeroRange(*Text, Sym.Value, Sym.Size))
      // The symbol table names a "function" whose range escapes .text --
      // a forged image trying to aim the redaction writes elsewhere.
      return makeError(SanitizerErrcRegionOutsideText,
                       "cannot sanitize '" + Sym.Name + "': " + E.message());
    Regions.push_back({Sym.Value - Text->Addr, Sym.Size, Sym.Name});
    ++Report.SanitizedFunctions;
    Report.SanitizedBytes += Sym.Size;
  }

  // Make the text segment writable for the runtime restorer: OR PF_W into
  // its program header (paper section 5 -- SGX1 has no way to change page
  // permissions after load, so they are set before signing).
  ELIDE_TRY(size_t TextSegment, findTextSegment(Image, *Text));
  if (Error E = Image.orSegmentFlags(TextSegment, PF_W))
    return E;

  uint64_t RestoreOffset = Restore->Value - Text->Addr;

  // Redact the symbol-table entries and names of everything just elided:
  // zeroing the bytes is pointless if the symtab still records each
  // secret function's name and exact [start, end). The symtab is not
  // SHF_ALLOC, so MRENCLAVE is unaffected. Invalidates Text/Restore.
  ELIDE_TRY(size_t Scrubbed, Image.scrubSymbols(Doomed));
  Report.ScrubbedSymbols = Scrubbed;

  ELIDE_TRY(SanitizedEnclave Out,
            packageSecrets(std::move(Image), std::move(OriginalText),
                           RestoreOffset, Storage, Rng, Report));
  Out.ElidedRegions = std::move(Regions);
  return Out;
}

Expected<SanitizedEnclave> elide::sanitizeEnclaveBlacklist(
    BytesView ElfFile, const std::set<std::string> &SecretFunctions,
    SecretStorage Storage, Drbg &Rng) {
  ELIDE_TRY(ElfImage Image, ElfImage::parse(toBytes(ElfFile)));

  const ElfSection *Text = Image.sectionByName(".text");
  if (!Text)
    return makeError(SanitizerErrcNoText, "enclave image has no .text section");
  const ElfSymbol *Restore = Image.symbolByName("elide_restore");
  if (!Restore)
    return makeError(SanitizerErrcNoRuntime,
                     "enclave was not linked with the SgxElide runtime");

  SanitizerReport Report;
  Report.TextBytes = Text->Size;

  // Blacklist mode: redact exactly the annotated functions and store only
  // their bytes (range list || bytes).
  Bytes SecretBytes;
  uint32_t Count = 0;
  Bytes Ranges;
  Bytes Contents;
  std::vector<SecretRegion> Regions;
  for (const ElfSymbol &Sym : Image.symbols()) {
    if (!Sym.isFunction())
      continue;
    ++Report.TotalFunctions;
    if (!SecretFunctions.count(Sym.Name))
      continue;
    if (SecretFunctions.count("elide_restore"))
      return makeError("cannot blacklist elide_restore itself");
    Expected<uint64_t> Offset = Image.fileOffsetOf(*Text, Sym.Value, Sym.Size);
    if (!Offset)
      // The secret-region table this mode emits (range list || bytes) must
      // only ever name text bytes; a region overlapping another section
      // would exfiltrate non-text contents into the secret data file.
      return makeError(SanitizerErrcRegionOutsideText,
                       "secret region for '" + Sym.Name +
                           "' overlaps non-text sections: " +
                           Offset.errorMessage());
    appendLE64(Ranges, Sym.Value - Text->Addr);
    appendLE64(Ranges, Sym.Size);
    appendBytes(Contents,
                BytesView(Image.fileBytes().data() + *Offset, Sym.Size));
    if (Error E = Image.zeroRange(*Text, Sym.Value, Sym.Size))
      return E;
    Regions.push_back({Sym.Value - Text->Addr, Sym.Size, Sym.Name});
    ++Count;
    ++Report.SanitizedFunctions;
    Report.SanitizedBytes += Sym.Size;
  }
  appendLE32(SecretBytes, Count);
  appendBytes(SecretBytes, Ranges);
  appendBytes(SecretBytes, Contents);

  ELIDE_TRY(size_t TextSegment, findTextSegment(Image, *Text));
  if (Error E = Image.orSegmentFlags(TextSegment, PF_W))
    return E;

  uint64_t RestoreOffset = Restore->Value - Text->Addr;

  // The blacklisted functions' symtab entries pin their names and exact
  // boundaries; redact them like the whitelist mode does.
  ELIDE_TRY(size_t Scrubbed, Image.scrubSymbols(SecretFunctions));
  Report.ScrubbedSymbols = Scrubbed;

  ELIDE_TRY(SanitizedEnclave Out,
            packageSecrets(std::move(Image), std::move(SecretBytes),
                           RestoreOffset, Storage, Rng, Report));
  Out.ElidedRegions = std::move(Regions);
  return Out;
}
