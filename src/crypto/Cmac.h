//===- crypto/Cmac.h - AES-CMAC (RFC 4493 / NIST SP 800-38B) --------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AES-CMAC. Real SGX MACs REPORT structures and derives keys with
/// AES-CMAC128; the device model does the same so local attestation
/// (EREPORT + report-key verification) matches the architecture.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_CRYPTO_CMAC_H
#define SGXELIDE_CRYPTO_CMAC_H

#include "crypto/Aes.h"

namespace elide {

/// A 16-byte CMAC tag.
using CmacTag = std::array<uint8_t, 16>;

/// Computes AES-CMAC over \p Data with a 128-bit key.
CmacTag aesCmac(const Aes128Key &Key, BytesView Data);

} // namespace elide

#endif // SGXELIDE_CRYPTO_CMAC_H
