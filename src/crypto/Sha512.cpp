//===- crypto/Sha512.cpp - SHA-512 (FIPS 180-4) ----------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "crypto/Sha512.h"

#include <cstring>

using namespace elide;

static const uint64_t K[80] = {
    0x428a2f98d728ae22ULL, 0x7137449123ef65cdULL, 0xb5c0fbcfec4d3b2fULL,
    0xe9b5dba58189dbbcULL, 0x3956c25bf348b538ULL, 0x59f111f1b605d019ULL,
    0x923f82a4af194f9bULL, 0xab1c5ed5da6d8118ULL, 0xd807aa98a3030242ULL,
    0x12835b0145706fbeULL, 0x243185be4ee4b28cULL, 0x550c7dc3d5ffb4e2ULL,
    0x72be5d74f27b896fULL, 0x80deb1fe3b1696b1ULL, 0x9bdc06a725c71235ULL,
    0xc19bf174cf692694ULL, 0xe49b69c19ef14ad2ULL, 0xefbe4786384f25e3ULL,
    0x0fc19dc68b8cd5b5ULL, 0x240ca1cc77ac9c65ULL, 0x2de92c6f592b0275ULL,
    0x4a7484aa6ea6e483ULL, 0x5cb0a9dcbd41fbd4ULL, 0x76f988da831153b5ULL,
    0x983e5152ee66dfabULL, 0xa831c66d2db43210ULL, 0xb00327c898fb213fULL,
    0xbf597fc7beef0ee4ULL, 0xc6e00bf33da88fc2ULL, 0xd5a79147930aa725ULL,
    0x06ca6351e003826fULL, 0x142929670a0e6e70ULL, 0x27b70a8546d22ffcULL,
    0x2e1b21385c26c926ULL, 0x4d2c6dfc5ac42aedULL, 0x53380d139d95b3dfULL,
    0x650a73548baf63deULL, 0x766a0abb3c77b2a8ULL, 0x81c2c92e47edaee6ULL,
    0x92722c851482353bULL, 0xa2bfe8a14cf10364ULL, 0xa81a664bbc423001ULL,
    0xc24b8b70d0f89791ULL, 0xc76c51a30654be30ULL, 0xd192e819d6ef5218ULL,
    0xd69906245565a910ULL, 0xf40e35855771202aULL, 0x106aa07032bbd1b8ULL,
    0x19a4c116b8d2d0c8ULL, 0x1e376c085141ab53ULL, 0x2748774cdf8eeb99ULL,
    0x34b0bcb5e19b48a8ULL, 0x391c0cb3c5c95a63ULL, 0x4ed8aa4ae3418acbULL,
    0x5b9cca4f7763e373ULL, 0x682e6ff3d6b2b8a3ULL, 0x748f82ee5defb2fcULL,
    0x78a5636f43172f60ULL, 0x84c87814a1f0ab72ULL, 0x8cc702081a6439ecULL,
    0x90befffa23631e28ULL, 0xa4506cebde82bde9ULL, 0xbef9a3f7b2c67915ULL,
    0xc67178f2e372532bULL, 0xca273eceea26619cULL, 0xd186b8c721c0c207ULL,
    0xeada7dd6cde0eb1eULL, 0xf57d4f7fee6ed178ULL, 0x06f067aa72176fbaULL,
    0x0a637dc5a2c898a6ULL, 0x113f9804bef90daeULL, 0x1b710b35131c471bULL,
    0x28db77f523047d84ULL, 0x32caab7b40c72493ULL, 0x3c9ebe0a15c9bebcULL,
    0x431d67c49c100d4cULL, 0x4cc5d4becb3e42b6ULL, 0x597f299cfc657e2aULL,
    0x5fcb6fab3ad6faecULL, 0x6c44198c4a475817ULL};

static inline uint64_t rotr(uint64_t X, unsigned N) {
  return (X >> N) | (X << (64 - N));
}

void Sha512::reset() {
  State[0] = 0x6a09e667f3bcc908ULL;
  State[1] = 0xbb67ae8584caa73bULL;
  State[2] = 0x3c6ef372fe94f82bULL;
  State[3] = 0xa54ff53a5f1d36f1ULL;
  State[4] = 0x510e527fade682d1ULL;
  State[5] = 0x9b05688c2b3e6c1fULL;
  State[6] = 0x1f83d9abfb41bd6bULL;
  State[7] = 0x5be0cd19137e2179ULL;
  TotalBytes = 0;
  BufferLen = 0;
}

void Sha512::compress(const uint8_t *Block) {
  uint64_t W[80];
  for (int I = 0; I < 16; ++I)
    W[I] = readBE64(Block + 8 * I);
  for (int I = 16; I < 80; ++I) {
    uint64_t S0 = rotr(W[I - 15], 1) ^ rotr(W[I - 15], 8) ^ (W[I - 15] >> 7);
    uint64_t S1 = rotr(W[I - 2], 19) ^ rotr(W[I - 2], 61) ^ (W[I - 2] >> 6);
    W[I] = W[I - 16] + S0 + W[I - 7] + S1;
  }

  uint64_t A = State[0], B = State[1], C = State[2], D = State[3];
  uint64_t E = State[4], F = State[5], G = State[6], H = State[7];

  for (int I = 0; I < 80; ++I) {
    uint64_t S1 = rotr(E, 14) ^ rotr(E, 18) ^ rotr(E, 41);
    uint64_t Ch = (E & F) ^ (~E & G);
    uint64_t T1 = H + S1 + Ch + K[I] + W[I];
    uint64_t S0 = rotr(A, 28) ^ rotr(A, 34) ^ rotr(A, 39);
    uint64_t Maj = (A & B) ^ (A & C) ^ (B & C);
    uint64_t T2 = S0 + Maj;
    H = G;
    G = F;
    F = E;
    E = D + T1;
    D = C;
    C = B;
    B = A;
    A = T1 + T2;
  }

  State[0] += A;
  State[1] += B;
  State[2] += C;
  State[3] += D;
  State[4] += E;
  State[5] += F;
  State[6] += G;
  State[7] += H;
}

void Sha512::update(BytesView Data) {
  TotalBytes += Data.size();
  size_t Offset = 0;
  if (BufferLen > 0) {
    size_t Need = 128 - BufferLen;
    size_t Take = Data.size() < Need ? Data.size() : Need;
    if (Take) // Empty views may carry a null data pointer.
      std::memcpy(Buffer + BufferLen, Data.data(), Take);
    BufferLen += Take;
    Offset = Take;
    if (BufferLen < 128)
      return;
    compress(Buffer);
    BufferLen = 0;
  }
  while (Offset + 128 <= Data.size()) {
    compress(Data.data() + Offset);
    Offset += 128;
  }
  if (Offset < Data.size()) {
    BufferLen = Data.size() - Offset;
    std::memcpy(Buffer, Data.data() + Offset, BufferLen);
  }
}

Sha512Digest Sha512::final() {
  // SHA-512 uses a 128-bit length field; message lengths here never exceed
  // 2^64 bits, so the high word is always zero.
  uint64_t BitLen = TotalBytes * 8;
  uint8_t Pad[144];
  size_t PadLen = (BufferLen < 112) ? (112 - BufferLen) : (240 - BufferLen);
  std::memset(Pad, 0, sizeof(Pad));
  Pad[0] = 0x80;
  update(BytesView(Pad, PadLen));
  uint8_t LenBytes[16] = {0};
  writeBE64(LenBytes + 8, BitLen);
  update(BytesView(LenBytes, 16));

  Sha512Digest Out;
  for (int I = 0; I < 8; ++I)
    writeBE64(Out.data() + 8 * I, State[I]);
  return Out;
}

Sha512Digest Sha512::hash(BytesView Data) {
  Sha512 Ctx;
  Ctx.update(Data);
  return Ctx.final();
}
