//===- tests/fuzz/FuzzElfImage.cpp - ELF image parser fuzz target -----------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fuzz target for `ElfImage::parseInto` and the edit primitives built on
/// it. An enclave file is attacker-controlled in every deployment story
/// (the loader runs outside the enclave, so whoever holds the binary can
/// feed it anything). Properties: parse failures carry a typed ElfErrc
/// code; a parsed image's accessors are memory-safe for every section and
/// symbol the file names, including the sanitizer's zeroRange edit path
/// whose bounds arithmetic once wrapped on crafted 64-bit offsets.
///
//===----------------------------------------------------------------------===//

#include "tests/fuzz/FuzzCommon.h"

#include "elf/ElfImage.h"
#include "elide/Sanitizer.h"

namespace {

using namespace elide;

void fuzzElfOne(BytesView Input) {
  Expected<ElfImage> Image = ElfImage::parse(toBytes(Input));
  if (!Image) {
    FUZZ_ASSERT(Image.errorCode() >= ElfErrcTruncated &&
                Image.errorCode() <= ElfErrcRange);
    return;
  }

  // Read-side accessors over everything the file names.
  for (const ElfSection &Sec : Image->sections()) {
    Bytes Contents = Image->sectionContents(Sec);
    if (Sec.Type != SHT_NOBITS)
      FUZZ_ASSERT(Contents.size() == Sec.Size);
    (void)Image->sectionByName(Sec.Name);
  }
  for (const ElfSymbol &Sym : Image->symbols())
    (void)Image->symbolByName(Sym.Name);

  // Edit-side: zero every symbol range claimed against every section
  // (capped so a file naming thousands of each stays fast). With forged
  // Value/Size this is exactly the wrap-prone write path; it must either
  // succeed inside the section or fail typed, never scribble.
  ElfImage Copy = *Image;
  size_t SecBudget = 64;
  for (const ElfSection &Sec : Copy.sections()) {
    if (SecBudget-- == 0)
      break;
    size_t SymBudget = 64;
    for (const ElfSymbol &Sym : Image->symbols()) {
      if (SymBudget-- == 0)
        break;
      Error E = Copy.zeroRange(Sec, Sym.Value, Sym.Size);
      if (E)
        FUZZ_ASSERT(E.code() == ElfErrcRange);
    }
  }

  // The sanitizer consumes parsed images wholesale; hostile symbol tables
  // must surface as typed errors, not out-of-bounds redaction.
  Whitelist Keep;
  Keep.add("elide_restore");
  Drbg Rng(7);
  (void)sanitizeEnclave(Input, Keep, SecretStorage::Remote, Rng);
  (void)sanitizeEnclaveBlacklist(Input, {"fn_1", "fn_2"},
                                 SecretStorage::Local, Rng);
}

} // namespace

#ifdef ELIDE_LIBFUZZER_DRIVER

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  fuzzElfOne(elide::BytesView(Data, Size));
  return 0;
}

#else // gtest replay + generative sweep

#include "tests/framework/Builders.h"
#include "tests/framework/FuzzHarness.h"
#include "tests/framework/Mutator.h"

#include <gtest/gtest.h>

namespace {

/// Generator: a valid seed image with 1..4 structural corruptions, so
/// inputs routinely pass the magic check and reach field validation.
elide::Bytes generateElf(elide::Drbg &Rng) {
  elide::Bytes Elf = elide::fuzz::buildSeedElf(Rng);
  size_t Corruptions = 1 + Rng.nextBelow(4);
  for (size_t I = 0; I < Corruptions; ++I)
    elide::fuzz::mutateElfStructure(Elf, Rng);
  if (Rng.nextBelow(4) == 0) // Sometimes add byte-level noise on top.
    Elf = elide::fuzz::mutate(Elf, Rng, 4);
  return Elf;
}

} // namespace

TEST(ElfImageFuzz, CorpusReplay) {
  elide::Expected<size_t> N = elide::fuzz::replayCorpus("elf", fuzzElfOne);
  ASSERT_TRUE(static_cast<bool>(N)) << N.errorMessage();
  EXPECT_GE(*N, 3u) << "elf corpus lost its seed entries";
}

TEST(ElfImageFuzz, GeneratedSweep) {
  elide::fuzz::generativeSweep(fuzzElfOne, generateElf,
                               /*Seed=*/0x454c465f46555a5aull,
                               /*Iterations=*/300);
}

#endif // ELIDE_LIBFUZZER_DRIVER
