file(REMOVE_RECURSE
  "CMakeFiles/elide_elf.dir/ElfBuilder.cpp.o"
  "CMakeFiles/elide_elf.dir/ElfBuilder.cpp.o.d"
  "CMakeFiles/elide_elf.dir/ElfImage.cpp.o"
  "CMakeFiles/elide_elf.dir/ElfImage.cpp.o.d"
  "libelide_elf.a"
  "libelide_elf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elide_elf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
