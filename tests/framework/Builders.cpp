//===- tests/framework/Builders.cpp - Structure-aware input builders --------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tests/framework/Builders.h"

#include "tests/framework/Mutator.h"

#include "crypto/Ed25519.h"
#include "elf/ElfBuilder.h"
#include "elf/ElfTypes.h"
#include "elide/SecretMeta.h"
#include "server/Protocol.h"
#include "sgx/SgxTypes.h"

#include <algorithm>

using namespace elide;
using namespace elide::fuzz;

//===----------------------------------------------------------------------===//
// ELF images
//===----------------------------------------------------------------------===//

Bytes fuzz::buildSeedElf(Drbg &Rng) {
  ElfBuilder B;
  size_t TextSize = 64 + Rng.nextBelow(448);
  Bytes Text = Rng.bytes(TextSize);
  size_t TextIdx =
      B.addProgbits(".text", 0x1000, Text, SHF_ALLOC | SHF_EXECINSTR);

  // Carve the text into a few function symbols; keep elide_restore so the
  // sanitizer path is reachable from fuzzed images too.
  size_t FnCount = 2 + Rng.nextBelow(4);
  uint64_t Cursor = 0x1000;
  uint64_t End = 0x1000 + TextSize;
  for (size_t I = 0; I < FnCount && Cursor < End; ++I) {
    uint64_t Size = 1 + Rng.nextBelow(End - Cursor);
    std::string Name =
        I == 0 ? "elide_restore" : "fn_" + std::to_string(I);
    B.addSymbol(Name, Cursor, Size, STT_FUNC, TextIdx);
    Cursor += Size;
  }

  size_t RoIdx = B.addProgbits(".rodata", 0x2000,
                               Rng.bytes(16 + Rng.nextBelow(112)), SHF_ALLOC);
  B.addSymbol("ro_table", 0x2000, 16, STT_OBJECT, RoIdx);
  if (Rng.nextBelow(2) == 0)
    B.addNobits(".bss", 0x3000, 0x100 + Rng.nextBelow(0x400),
                SHF_ALLOC | SHF_WRITE);

  Expected<Bytes> File = B.build();
  // The builder only fails on overlapping sections, which the fixed
  // addresses above rule out.
  return File ? File.takeValue() : Bytes();
}

void fuzz::mutateElfStructure(Bytes &Elf, Drbg &Rng) {
  if (Elf.size() < Elf64EhdrSize)
    return;
  uint64_t PhOff = readLE64(Elf.data() + 32);
  uint64_t ShOff = readLE64(Elf.data() + 40);
  uint16_t PhNum = readLE16(Elf.data() + 56);
  uint16_t ShNum = readLE16(Elf.data() + 60);

  switch (Rng.nextBelow(4)) {
  case 0: {
    // File header: PhOff(32) ShOff(40) PhNum(56) ShNum(60) ShStrNdx(62).
    static const size_t Fields[] = {32, 40, 56, 60, 62};
    spliceInterestingAt(Elf, Fields[Rng.nextBelow(5)], Rng);
    break;
  }
  case 1: {
    // A program-header field: Type(0) Offset(8) VAddr(16) FileSize(32)
    // MemSize(40) Align(48), relative to the entry.
    if (PhNum == 0 || PhOff >= Elf.size())
      return;
    uint64_t Entry = PhOff + Rng.nextBelow(PhNum) * Elf64PhdrSize;
    static const size_t Fields[] = {0, 8, 16, 32, 40, 48};
    spliceInterestingAt(Elf, Entry + Fields[Rng.nextBelow(6)], Rng);
    break;
  }
  case 2: {
    // A section-header field: NameOff(0) Type(4) Addr(16) Offset(24)
    // Size(32) Link(40) EntSize(56).
    if (ShNum == 0 || ShOff >= Elf.size())
      return;
    uint64_t Entry = ShOff + Rng.nextBelow(ShNum) * Elf64ShdrSize;
    static const size_t Fields[] = {0, 4, 16, 24, 32, 40, 56};
    spliceInterestingAt(Elf, Entry + Fields[Rng.nextBelow(7)], Rng);
    break;
  }
  case 3: {
    // A symbol-table entry: find the first SHT_SYMTAB header and corrupt
    // one symbol's NameOff(0)/Info(4)/Shndx(6)/Value(8)/Size(16).
    for (uint16_t I = 0; I < ShNum; ++I) {
      uint64_t H = ShOff + uint64_t(I) * Elf64ShdrSize;
      if (H + Elf64ShdrSize > Elf.size())
        return;
      if (readLE32(Elf.data() + H + 4) != SHT_SYMTAB)
        continue;
      uint64_t SymOff = readLE64(Elf.data() + H + 24);
      uint64_t SymBytes = readLE64(Elf.data() + H + 32);
      uint64_t Count = SymBytes / Elf64SymSize;
      if (Count == 0 || SymOff >= Elf.size())
        return;
      uint64_t Entry = SymOff + Rng.nextBelow(Count) * Elf64SymSize;
      static const size_t Fields[] = {0, 4, 6, 8, 16};
      spliceInterestingAt(Elf, Entry + Fields[Rng.nextBelow(5)], Rng);
      return;
    }
    break;
  }
  }
}

//===----------------------------------------------------------------------===//
// Protocol frames
//===----------------------------------------------------------------------===//

Bytes fuzz::buildProtocolFrame(Drbg &Rng) {
  Aes128Key Key{};
  Rng.fill(MutableBytesView(Key.data(), Key.size()));

  switch (Rng.nextBelow(9)) {
  case 0: { // HELLO with a quote-sized (296-byte) random body.
    Bytes F(1, FrameHello);
    appendBytes(F, Rng.bytes(296));
    return F;
  }
  case 1: { // HELLO with an arbitrary-length body.
    Bytes F(1, FrameHello);
    appendBytes(F, Rng.bytes(Rng.nextBelow(512)));
    return F;
  }
  case 2: { // A correctly sealed server->client record.
    Expected<Bytes> F = sealRecord(Key, Rng.bytes(Rng.nextBelow(128)), Rng);
    return F ? F.takeValue() : Bytes();
  }
  case 3: { // A sealed record, then corrupted.
    Expected<Bytes> F = sealRecord(Key, Rng.bytes(Rng.nextBelow(128)), Rng);
    if (!F)
      return Bytes();
    return mutate(*F, Rng, 4);
  }
  case 4: { // A correctly sealed session record (forged-looking sid).
    Expected<Bytes> F = sealSessionRecord(Rng.next64(), Key,
                                          Rng.bytes(1 + Rng.nextBelow(64)),
                                          Rng);
    return F ? F.takeValue() : Bytes();
  }
  case 5: { // Record-typed frame of arbitrary length (truncation sweep).
    Bytes F(1, FrameRecord);
    appendBytes(F, Rng.bytes(Rng.nextBelow(64)));
    return F;
  }
  case 6: { // ERROR frame with arbitrary payload (possibly empty).
    Bytes F(1, FrameError);
    appendBytes(F, Rng.bytes(Rng.nextBelow(64)));
    return F;
  }
  case 7: { // OVERLOADED frame: exact, truncated, or oversized.
    Bytes F = overloadedFrame(static_cast<uint32_t>(Rng.next64()));
    uint64_t Shape = Rng.nextBelow(3);
    if (Shape == 1)
      F.resize(Rng.nextBelow(F.size()) + 1); // Truncated (keeps the type).
    else if (Shape == 2)
      appendBytes(F, Rng.bytes(1 + Rng.nextBelow(16))); // Trailing junk.
    return F;
  }
  default: // Unknown frame type / pure garbage / empty.
    return Rng.bytes(Rng.nextBelow(96));
  }
}

//===----------------------------------------------------------------------===//
// SecretMeta blobs
//===----------------------------------------------------------------------===//

Bytes fuzz::buildSecretMetaBlob(Drbg &Rng) {
  SecretMeta M;
  M.DataLength = Rng.nextBelow(2) ? Rng.nextBelow(1 << 20)
                                  : pickInteresting64(Rng);
  M.RestoreOffset = Rng.nextBelow(2) ? Rng.nextBelow(1 << 16)
                                     : pickInteresting64(Rng);
  M.Encrypted = Rng.nextBelow(2) == 0;
  Rng.fill(MutableBytesView(M.Key.data(), M.Key.size()));
  Rng.fill(MutableBytesView(M.Iv.data(), M.Iv.size()));
  Rng.fill(MutableBytesView(M.Mac.data(), M.Mac.size()));
  Bytes Blob = M.serialize();

  switch (Rng.nextBelow(4)) {
  case 0: // Well-formed (fields may still be boundary values).
    return Blob;
  case 1: // Corrupt the flag byte.
    Blob[16] = static_cast<uint8_t>(Rng.next64());
    return Blob;
  case 2: // Wrong size: truncate or pad.
    Blob.resize(Rng.nextBelow(Blob.size() + 16));
    return Blob;
  default: // Byte-level noise.
    return mutate(Blob, Rng, 4);
  }
}

//===----------------------------------------------------------------------===//
// SIGSTRUCTs and quotes
//===----------------------------------------------------------------------===//

namespace {

Ed25519KeyPair deterministicKeyPair(Drbg &Rng) {
  Ed25519Seed Seed{};
  Rng.fill(MutableBytesView(Seed.data(), Seed.size()));
  return ed25519KeyPairFromSeed(Seed);
}

} // namespace

Bytes fuzz::buildSigStructBlob(Drbg &Rng) {
  sgx::Measurement Mr{};
  Rng.fill(MutableBytesView(Mr.data(), Mr.size()));
  sgx::SigStruct Sig =
      sgx::SigStruct::sign(deterministicKeyPair(Rng), Mr, Rng.next64() & 3);
  Bytes Blob = Sig.serialize();
  switch (Rng.nextBelow(3)) {
  case 0: // Genuinely signed.
    return Blob;
  case 1: // Signed then tampered (signature must stop verifying).
    Blob[Rng.nextBelow(Blob.size())] ^= static_cast<uint8_t>(
        1 + Rng.nextBelow(255));
    return Blob;
  default: // Size and byte noise.
    return mutate(Blob, Rng, 6);
  }
}

Bytes fuzz::buildQuoteBlob(Drbg &Rng) {
  sgx::Quote Q;
  Rng.fill(MutableBytesView(Q.Body.MrEnclave.data(), 32));
  Rng.fill(MutableBytesView(Q.Body.MrSigner.data(), 32));
  Q.Body.Attributes = Rng.next64();
  Rng.fill(MutableBytesView(Q.Body.Data.data(), 64));
  Ed25519KeyPair AttKey = deterministicKeyPair(Rng);
  Q.AttestationKey = AttKey.PublicKey;
  // Self-certified: not chained to any real authority, but structurally
  // a valid signature so deep verification paths run.
  Q.KeyCertificate = ed25519Sign(
      AttKey, BytesView(Q.AttestationKey.data(), Q.AttestationKey.size()));
  Q.Signature = ed25519Sign(AttKey, Q.Body.serialize());
  Bytes Blob = Q.serialize();
  switch (Rng.nextBelow(3)) {
  case 0:
    return Blob;
  case 1:
    Blob[Rng.nextBelow(Blob.size())] ^= static_cast<uint8_t>(
        1 + Rng.nextBelow(255));
    return Blob;
  default:
    return mutate(Blob, Rng, 6);
  }
}

//===----------------------------------------------------------------------===//
// Whitelists
//===----------------------------------------------------------------------===//

Bytes fuzz::buildWhitelistText(Drbg &Rng) {
  std::string Text;
  size_t Lines = Rng.nextBelow(12);
  for (size_t I = 0; I < Lines; ++I) {
    switch (Rng.nextBelow(6)) {
    case 0: // Plausible symbol name.
      Text += "fn_" + std::to_string(Rng.nextBelow(8));
      break;
    case 1: // Duplicate-prone fixed name.
      Text += "elide_restore";
      break;
    case 2: // Empty line.
      break;
    case 3: { // Very long name.
      Text.append(64 + Rng.nextBelow(192), 'a' + char(Rng.nextBelow(26)));
      break;
    }
    case 4: { // Hostile bytes inside a name (NUL, high bit, spaces).
      Bytes Junk = Rng.bytes(1 + Rng.nextBelow(12));
      Text.append(reinterpret_cast<const char *>(Junk.data()), Junk.size());
      break;
    }
    default: // Bridge-prefixed name (always-whitelisted path).
      Text += "__bridge_ecall_" + std::to_string(Rng.nextBelow(4));
      break;
    }
    if (Rng.nextBelow(8) != 0) // Occasionally omit the newline.
      Text += '\n';
  }
  return bytesOfString(Text);
}
