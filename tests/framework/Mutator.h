//===- tests/framework/Mutator.h - Seeded byte mutators ---------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic byte-level mutators for the adversarial-input harness.
/// Every mutation draws from the caller's `Drbg`, so a failing input is
/// fully reproducible from the seed that produced it. The strategies are
/// the classic fuzzing set: bit flips, byte rewrites, chunk
/// deletion/duplication/insertion, truncation, and splicing of
/// "interesting" integers (boundary values that defeat naive `a + b > n`
/// bounds checks by wrapping 64-bit arithmetic).
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_TESTS_FRAMEWORK_MUTATOR_H
#define SGXELIDE_TESTS_FRAMEWORK_MUTATOR_H

#include "crypto/Drbg.h"
#include "support/Bytes.h"

namespace elide {
namespace fuzz {

/// Picks one of the boundary integers that historically break parsers:
/// zero, sign/width edges, and values chosen so `offset + size` wraps past
/// 2^64.
uint64_t pickInteresting64(Drbg &Rng);

/// Applies one randomly chosen mutation to \p Data in place. Handles empty
/// buffers (the only applicable mutations then are insertions).
void mutateOnce(Bytes &Data, Drbg &Rng);

/// Returns a copy of \p Input with 1..MaxMutations mutations applied.
Bytes mutate(BytesView Input, Drbg &Rng, size_t MaxMutations = 8);

/// Overwrites 1/2/4/8 bytes at a random offset with an interesting value
/// (little-endian). This is the structure-killer: applied at a field
/// offset it forges the crafted 64-bit sizes the bounds checks must
/// survive.
void spliceInteresting(Bytes &Data, Drbg &Rng);

/// Writes an interesting 64-bit value at \p Offset (clamped to fit).
void spliceInterestingAt(Bytes &Data, size_t Offset, Drbg &Rng);

/// Crossover: splices a random chunk of \p Other into a copy of \p Input.
Bytes crossover(BytesView Input, BytesView Other, Drbg &Rng);

} // namespace fuzz
} // namespace elide

#endif // SGXELIDE_TESTS_FRAMEWORK_MUTATOR_H
