//===- apps/BiniaxApp.cpp - The Biniax game benchmark -----------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Biniax-style arcade puzzle: a 5-column field of element *pairs*
/// scrolls toward the player; the player survives a collision only when
/// one element of the pair matches the element they carry, taking the
/// other element and scoring. The trusted component holds the scrolling /
/// collision / scoring logic and the secret asset decryptor; the untrusted
/// driver replays deterministic games against a C++ oracle.
///
//===----------------------------------------------------------------------===//

#include "apps/App.h"
#include "apps/AppUtil.h"

#include <cstring>

using namespace elide;
using namespace elide::apps;

namespace {

const char AssetText[] = "element:air|element:water|element:fire|"
                         "element:earth|sprite-sheet:binx.pak";
constexpr size_t AssetSize = sizeof(AssetText);

uint8_t assetKeystream(uint64_t I) {
  uint64_t X = (I ^ 0xb1417) * 0xd1b54a32d192ed03ULL;
  X ^= X >> 31;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 27;
  return static_cast<uint8_t>(X);
}

const char *BiniaxAlgorithm = R"elc(
// Biniax-style trusted component. The field is 5 columns x 8 rows of
// element pairs, one byte per cell: hi nibble = element A, lo = element B,
// 0 = empty. The player carries one element (1..4) and sits below row 7.

var binx_assets: u8[128];
var binx_field: u8[40];
var binx_rng: u64;
var binx_score: u64;

// SECRET: asset keystream + decryptor.
fn binx_keystream(i: u64) -> u64 {
  var x: u64 = (i ^ 0xb1417) * 0xd1b54a32d192ed03;
  x = x ^ (x >> 31);
  x = x * 0x94d049bb133111eb;
  x = x ^ (x >> 27);
  return x & 0xff;
}

fn binx_load_assets(n: u64) -> u64 {
  var sum: u64 = 0;
  for (var i: u64 = 0; i < n; i = i + 1) {
    binx_assets[i] = (binx_assets_enc[i] as u64) ^ binx_keystream(i);
    sum = (sum * 131 + (binx_assets[i] as u64)) & 0xffffffff;
  }
  return sum;
}

fn binx_rand() -> u64 {
  binx_rng = binx_rng * 2862933555777941757 + 3037000493;
  return binx_rng >> 33;
}

// Generates one new top row: each cell empty (p=3/8) or a random pair of
// two distinct elements.
fn binx_gen_row() {
  for (var c: u64 = 0; c < 5; c = c + 1) {
    var r: u64 = binx_rand() % 8;
    if (r < 3) {
      binx_field[c] = 0;
    } else {
      var a: u64 = binx_rand() % 4 + 1;
      var b: u64 = binx_rand() % 3 + 1;
      if (b >= a) {
        b = b + 1;
      }
      binx_field[c] = (a << 4) | b;
    }
  }
}

// Scrolls the field down one row (row 7 leaves the screen) and generates
// a fresh row 0.
fn binx_scroll() {
  for (var row: u64 = 7; row >= 1; row = row - 1) {
    for (var c: u64 = 0; c < 5; c = c + 1) {
      binx_field[row * 5 + c] = binx_field[(row - 1) * 5 + c];
    }
  }
  binx_gen_row();
}

// Can a player carrying `elem` survive the pair `cell`? Returns the new
// carried element + 1, or 0 when the collision is fatal.
fn binx_collide(elem: u64, cell: u64) -> u64 {
  if (cell == 0) {
    return elem + 1;
  }
  var a: u64 = (cell >> 4) & 0xf;
  var b: u64 = cell & 0xf;
  if (a == elem) {
    return b + 1;
  }
  if (b == elem) {
    return a + 1;
  }
  return 0;
}

// Ecall: input = [seed 8][ticks 8][asset_len 8].
// Plays with a greedy survival policy (prefer staying, else nearest
// survivable column). Output = [score 8][checksum 8][ticks_survived 8].
export fn binx_play(inp: *u8, inlen: u64, outp: *u8, outcap: u64) -> u64 {
  if (inlen < 24) {
    return 1;
  }
  if (outcap < 24) {
    return 2;
  }
  var alen: u64 = load_le64(inp + 16);
  if (alen > 128) {
    return 3;
  }
  var checksum: u64 = binx_load_assets(alen);

  binx_rng = load_le64(inp);
  var ticks: u64 = load_le64(inp + 8);
  binx_score = 0;
  for (var i: u64 = 0; i < 40; i = i + 1) {
    binx_field[i] = 0;
  }
  var col: u64 = 2;
  var elem: u64 = 1;

  var survived: u64 = 0;
  for (var t: u64 = 0; t < ticks; t = t + 1) {
    binx_scroll();
    // The pair now in the player's row is at row 7.
    var best: u64 = 0;
    var bestcol: u64 = col;
    // Prefer the current column, then nearest alternatives.
    for (var d: u64 = 0; d < 5; d = d + 1) {
      var cands: u64 = 2;
      if (d == 0) {
        cands = 1;
      }
      for (var s: u64 = 0; s < cands; s = s + 1) {
        var c: u64 = col;
        if (s == 0) {
          c = col + d;
        } else {
          c = col - d;
        }
        // Unsigned wraparound keeps c huge when col < d.
        if (c < 5 && best == 0) {
          var r: u64 = binx_collide(elem, binx_field[7 * 5 + c] as u64);
          if (r != 0) {
            best = r;
            bestcol = c;
          }
        }
      }
    }
    if (best == 0) {
      break;
    }
    if (binx_field[7 * 5 + bestcol] != 0) {
      binx_score = binx_score + 1;
    }
    binx_field[7 * 5 + bestcol] = 0;
    elem = best - 1;
    col = bestcol;
    survived = survived + 1;
  }

  store_le64(outp, binx_score);
  store_le64(outp + 8, checksum);
  store_le64(outp + 16, survived);
  return 0;
}
)elc";

//===----------------------------------------------------------------------===//
// Host oracle
//===----------------------------------------------------------------------===//

struct OracleBiniax {
  uint8_t Field[40] = {0};
  uint64_t Rng = 0;
  uint64_t Score = 0;

  uint64_t rand() {
    Rng = Rng * 2862933555777941757ULL + 3037000493ULL;
    return Rng >> 33;
  }

  void genRow() {
    for (uint64_t C = 0; C < 5; ++C) {
      uint64_t R = rand() % 8;
      if (R < 3) {
        Field[C] = 0;
      } else {
        uint64_t A = rand() % 4 + 1;
        uint64_t B = rand() % 3 + 1;
        if (B >= A)
          B += 1;
        Field[C] = static_cast<uint8_t>(A << 4 | B);
      }
    }
  }

  void scroll() {
    for (uint64_t Row = 7; Row >= 1; --Row)
      for (uint64_t C = 0; C < 5; ++C)
        Field[Row * 5 + C] = Field[(Row - 1) * 5 + C];
    genRow();
  }

  static uint64_t collide(uint64_t Elem, uint64_t Cell) {
    if (Cell == 0)
      return Elem + 1;
    uint64_t A = (Cell >> 4) & 0xf, B = Cell & 0xf;
    if (A == Elem)
      return B + 1;
    if (B == Elem)
      return A + 1;
    return 0;
  }

  uint64_t play(uint64_t Seed, uint64_t Ticks) {
    Rng = Seed;
    Score = 0;
    std::memset(Field, 0, sizeof(Field));
    uint64_t Col = 2, Elem = 1, Survived = 0;
    for (uint64_t T = 0; T < Ticks; ++T) {
      scroll();
      uint64_t Best = 0, BestCol = Col;
      for (uint64_t D = 0; D < 5; ++D) {
        uint64_t Cands = D == 0 ? 1 : 2;
        for (uint64_t S = 0; S < Cands; ++S) {
          uint64_t C = S == 0 ? Col + D : Col - D;
          if (C < 5 && Best == 0) {
            uint64_t R = collide(Elem, Field[7 * 5 + C]);
            if (R != 0) {
              Best = R;
              BestCol = C;
            }
          }
        }
      }
      if (Best == 0)
        break;
      if (Field[7 * 5 + BestCol] != 0)
        ++Score;
      Field[7 * 5 + BestCol] = 0;
      Elem = Best - 1;
      Col = BestCol;
      ++Survived;
    }
    return Survived;
  }
};

uint64_t assetChecksum() {
  uint64_t Sum = 0;
  for (size_t I = 0; I < AssetSize; ++I)
    Sum = (Sum * 131 + static_cast<uint8_t>(AssetText[I])) & 0xffffffff;
  return Sum;
}

Error biniaxWorkload(sgx::Enclave &E) {
  for (uint64_t Seed : {3ull, 77ull, 0xb141aull}) {
    Bytes In;
    appendLE64(In, Seed);
    appendLE64(In, 400); // ticks
    appendLE64(In, AssetSize);
    ELIDE_TRY(Bytes Out, runEcall(E, "binx_play", In, 24));

    OracleBiniax Oracle;
    uint64_t ExpectSurvived = Oracle.play(Seed, 400);

    if (readLE64(Out.data() + 8) != assetChecksum())
      return makeError("Biniax enclave decrypted the assets incorrectly");
    if (readLE64(Out.data()) != Oracle.Score)
      return makeError("Biniax enclave score mismatch");
    if (readLE64(Out.data() + 16) != ExpectSurvived)
      return makeError("Biniax enclave survival-tick mismatch");
  }
  return Error::success();
}

} // namespace

AppSpec apps::makeBiniaxApp() {
  Bytes Encrypted(AssetSize);
  for (size_t I = 0; I < AssetSize; ++I)
    Encrypted[I] = static_cast<uint8_t>(AssetText[I]) ^ assetKeystream(I);

  std::string Source;
  Source += elcArrayU8("binx_assets_enc", Encrypted);
  Source += BiniaxAlgorithm;

  AppSpec Spec;
  Spec.Name = "Biniax";
  Spec.TrustedSources = {{"biniax.elc", Source}};
  Spec.RunWorkload = biniaxWorkload;
  Spec.IsGame = true;
  return Spec;
}
