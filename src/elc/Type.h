//===- elc/Type.h - Elc type system ----------------------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Elc's type system: fixed-width unsigned integers (u8..u64), one signed
/// 64-bit type (i64), bool, void, pointers, and fixed-size arrays. All
/// values are 64 bits in registers; element types matter at loads, stores,
/// and pointer arithmetic.
///
//===----------------------------------------------------------------------===//

#ifndef SGXELIDE_ELC_TYPE_H
#define SGXELIDE_ELC_TYPE_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace elide {
namespace elc {

enum class TypeKind { Void, Bool, U8, U16, U32, U64, I64, Pointer, Array };

/// An interned type node. Compare by pointer within one `TypeArena`.
struct Type {
  TypeKind Kind = TypeKind::Void;
  const Type *Element = nullptr; ///< Pointee / array element.
  uint64_t ArraySize = 0;

  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isPointer() const { return Kind == TypeKind::Pointer; }
  bool isArray() const { return Kind == TypeKind::Array; }
  bool isSigned() const { return Kind == TypeKind::I64; }
  bool isInteger() const {
    return Kind == TypeKind::Bool || Kind == TypeKind::U8 ||
           Kind == TypeKind::U16 || Kind == TypeKind::U32 ||
           Kind == TypeKind::U64 || Kind == TypeKind::I64;
  }
  bool isScalar() const { return isInteger() || isPointer(); }

  /// In-memory size in bytes.
  uint64_t sizeInBytes() const {
    switch (Kind) {
    case TypeKind::Void:
      return 0;
    case TypeKind::Bool:
    case TypeKind::U8:
      return 1;
    case TypeKind::U16:
      return 2;
    case TypeKind::U32:
      return 4;
    case TypeKind::U64:
    case TypeKind::I64:
    case TypeKind::Pointer:
      return 8;
    case TypeKind::Array:
      return Element->sizeInBytes() * ArraySize;
    }
    return 0;
  }

  std::string str() const {
    switch (Kind) {
    case TypeKind::Void:
      return "void";
    case TypeKind::Bool:
      return "bool";
    case TypeKind::U8:
      return "u8";
    case TypeKind::U16:
      return "u16";
    case TypeKind::U32:
      return "u32";
    case TypeKind::U64:
      return "u64";
    case TypeKind::I64:
      return "i64";
    case TypeKind::Pointer:
      return "*" + Element->str();
    case TypeKind::Array:
      return Element->str() + "[" + std::to_string(ArraySize) + "]";
    }
    return "?";
  }
};

/// Owns type nodes; primitives are singletons, pointers/arrays are
/// deduplicated on construction.
class TypeArena {
public:
  const Type *voidType() { return primitive(TypeKind::Void); }
  const Type *boolType() { return primitive(TypeKind::Bool); }
  const Type *u8() { return primitive(TypeKind::U8); }
  const Type *u16() { return primitive(TypeKind::U16); }
  const Type *u32() { return primitive(TypeKind::U32); }
  const Type *u64() { return primitive(TypeKind::U64); }
  const Type *i64() { return primitive(TypeKind::I64); }

  const Type *pointerTo(const Type *Element) {
    for (const auto &T : Owned)
      if (T->Kind == TypeKind::Pointer && T->Element == Element)
        return T.get();
    return makeNode(TypeKind::Pointer, Element, 0);
  }

  const Type *arrayOf(const Type *Element, uint64_t Size) {
    for (const auto &T : Owned)
      if (T->Kind == TypeKind::Array && T->Element == Element &&
          T->ArraySize == Size)
        return T.get();
    return makeNode(TypeKind::Array, Element, Size);
  }

private:
  const Type *primitive(TypeKind Kind) {
    unsigned Idx = static_cast<unsigned>(Kind);
    assert(Idx < 7 && "not a primitive kind");
    if (!Primitives[Idx])
      Primitives[Idx] = makeNode(Kind, nullptr, 0);
    return Primitives[Idx];
  }

  const Type *makeNode(TypeKind Kind, const Type *Element, uint64_t Size) {
    auto Node = std::make_unique<Type>();
    Node->Kind = Kind;
    Node->Element = Element;
    Node->ArraySize = Size;
    Owned.push_back(std::move(Node));
    return Owned.back().get();
  }

  std::vector<std::unique_ptr<Type>> Owned;
  const Type *Primitives[7] = {nullptr};
};

} // namespace elc
} // namespace elide

#endif // SGXELIDE_ELC_TYPE_H
