file(REMOVE_RECURSE
  "CMakeFiles/elide_tests.dir/AppsTest.cpp.o"
  "CMakeFiles/elide_tests.dir/AppsTest.cpp.o.d"
  "CMakeFiles/elide_tests.dir/BridgeTest.cpp.o"
  "CMakeFiles/elide_tests.dir/BridgeTest.cpp.o.d"
  "CMakeFiles/elide_tests.dir/CryptoTest.cpp.o"
  "CMakeFiles/elide_tests.dir/CryptoTest.cpp.o.d"
  "CMakeFiles/elide_tests.dir/ElcPropertyTest.cpp.o"
  "CMakeFiles/elide_tests.dir/ElcPropertyTest.cpp.o.d"
  "CMakeFiles/elide_tests.dir/ElcTest.cpp.o"
  "CMakeFiles/elide_tests.dir/ElcTest.cpp.o.d"
  "CMakeFiles/elide_tests.dir/ElfTest.cpp.o"
  "CMakeFiles/elide_tests.dir/ElfTest.cpp.o.d"
  "CMakeFiles/elide_tests.dir/ElideIntegrationTest.cpp.o"
  "CMakeFiles/elide_tests.dir/ElideIntegrationTest.cpp.o.d"
  "CMakeFiles/elide_tests.dir/ElideUnitTest.cpp.o"
  "CMakeFiles/elide_tests.dir/ElideUnitTest.cpp.o.d"
  "CMakeFiles/elide_tests.dir/RobustnessTest.cpp.o"
  "CMakeFiles/elide_tests.dir/RobustnessTest.cpp.o.d"
  "CMakeFiles/elide_tests.dir/ServerTest.cpp.o"
  "CMakeFiles/elide_tests.dir/ServerTest.cpp.o.d"
  "CMakeFiles/elide_tests.dir/SgxTest.cpp.o"
  "CMakeFiles/elide_tests.dir/SgxTest.cpp.o.d"
  "CMakeFiles/elide_tests.dir/SupportTest.cpp.o"
  "CMakeFiles/elide_tests.dir/SupportTest.cpp.o.d"
  "CMakeFiles/elide_tests.dir/VmTest.cpp.o"
  "CMakeFiles/elide_tests.dir/VmTest.cpp.o.d"
  "elide_tests"
  "elide_tests.pdb"
  "elide_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elide_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
