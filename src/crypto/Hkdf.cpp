//===- crypto/Hkdf.cpp - HKDF-SHA256 (RFC 5869) ----------------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "crypto/Hkdf.h"

#include "crypto/Hmac.h"

#include <cassert>

using namespace elide;

Sha256Digest elide::hkdfExtract(BytesView Salt, BytesView Ikm) {
  return hmacSha256(Salt, Ikm);
}

Bytes elide::hkdfExpand(BytesView Prk, BytesView Info, size_t Length) {
  assert(Length <= 255 * 32 && "HKDF-Expand output too long");
  Bytes Out;
  Out.reserve(Length);
  Bytes Block;
  uint8_t Counter = 1;
  while (Out.size() < Length) {
    Bytes Input = Block;
    appendBytes(Input, Info);
    Input.push_back(Counter);
    Sha256Digest T = hmacSha256(Prk, Input);
    Block.assign(T.begin(), T.end());
    size_t Take = Length - Out.size();
    if (Take > Block.size())
      Take = Block.size();
    Out.insert(Out.end(), Block.begin(), Block.begin() + Take);
    ++Counter;
  }
  return Out;
}

Bytes elide::hkdf(BytesView Salt, BytesView Ikm, BytesView Info,
                  size_t Length) {
  Sha256Digest Prk = hkdfExtract(Salt, Ikm);
  return hkdfExpand(BytesView(Prk.data(), Prk.size()), Info, Length);
}
