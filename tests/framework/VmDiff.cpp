//===- tests/framework/VmDiff.cpp - SVM backend differential harness --------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tests/framework/VmDiff.h"

#include "vm/MemoryBus.h"

#include <cstring>

using namespace elide;
using namespace elide::vmdiff;

namespace {

/// Generator register conventions: r10/r11 hold data-region pointers,
/// r12 holds 0 (code-region base for self-modifying stores), r1..r8 are
/// scratch. The prologue establishes these; the body may clobber them,
/// which is fine -- a wild pointer just produces a memory fault both
/// engines must report identically.
constexpr uint8_t ScratchLo = 1, ScratchHi = 8;

uint8_t scratch(Drbg &Rng) {
  return static_cast<uint8_t>(ScratchLo + Rng.nextBelow(ScratchHi));
}

/// Any register, including r0 and the pointer registers.
uint8_t anyReg(Drbg &Rng) {
  return static_cast<uint8_t>(Rng.nextBelow(14));
}

Instruction make(Opcode Op, uint8_t Rd, uint8_t Rs1, uint8_t Rs2,
                 int32_t Imm) {
  Instruction I;
  I.Op = Op;
  I.Rd = Rd;
  I.Rs1 = Rs1;
  I.Rs2 = Rs2;
  I.Imm = Imm;
  return I;
}

/// PC-relative displacement from instruction \p From to slot \p To.
int32_t slotDisp(unsigned From, unsigned To) {
  return static_cast<int32_t>((static_cast<int64_t>(To) - From) *
                              static_cast<int64_t>(SvmInstrSize));
}

} // namespace

Bytes elide::vmdiff::generateProgram(Drbg &Rng, const ProgramOptions &Opts) {
  const unsigned MinLen = 12;
  const unsigned Len =
      MinLen + static_cast<unsigned>(Rng.nextBelow(
                   Opts.MaxInstructions > MinLen ? Opts.MaxInstructions - MinLen
                                                 : 1));
  const int64_t DataBase = static_cast<int64_t>(Opts.MemorySize / 2);

  std::vector<Instruction> Prog;
  Prog.reserve(Len);

  // Prologue: data pointers, the code base, and a couple of seed values.
  Prog.push_back(make(Opcode::LdI, 10, 0, 0, static_cast<int32_t>(DataBase)));
  Prog.push_back(
      make(Opcode::LdI, 11, 0, 0, static_cast<int32_t>(DataBase + 1024)));
  Prog.push_back(make(Opcode::LdI, 12, 0, 0, 0));
  Prog.push_back(make(Opcode::LdI, 1, 0, 0,
                      static_cast<int32_t>(Rng.next64() & 0x7fffffff)));
  Prog.push_back(make(Opcode::LdI, 2, 0, 0,
                      static_cast<int32_t>(Rng.next64() & 0xffff) + 1));

  static const Opcode AluRR[] = {Opcode::Add,  Opcode::Sub,  Opcode::Mul,
                                 Opcode::DivU, Opcode::DivS, Opcode::RemU,
                                 Opcode::RemS, Opcode::And,  Opcode::Or,
                                 Opcode::Xor,  Opcode::Shl,  Opcode::ShrL,
                                 Opcode::ShrA};
  static const Opcode AluRI[] = {Opcode::AddI, Opcode::MulI,  Opcode::AndI,
                                 Opcode::OrI,  Opcode::XorI,  Opcode::ShlI,
                                 Opcode::ShrLI, Opcode::ShrAI};
  static const Opcode Cmps[] = {Opcode::Seq,  Opcode::Sne,  Opcode::SltU,
                                Opcode::SltS, Opcode::SleU, Opcode::SleS};
  static const Opcode Loads[] = {Opcode::LdBU, Opcode::LdBS, Opcode::LdHU,
                                 Opcode::LdHS, Opcode::LdWU, Opcode::LdWS,
                                 Opcode::LdD};
  static const Opcode Stores[] = {Opcode::StB, Opcode::StH, Opcode::StW,
                                  Opcode::StD};

  while (Prog.size() < Len - 1) {
    unsigned Cur = static_cast<unsigned>(Prog.size());
    uint64_t Pick = Rng.nextBelow(100);

    if (Pick < 20) { // Three-register ALU (divides included: trap parity).
      Prog.push_back(make(AluRR[Rng.nextBelow(13)], scratch(Rng), anyReg(Rng),
                          anyReg(Rng), 0));
    } else if (Pick < 32) { // Register-immediate ALU.
      Prog.push_back(make(AluRI[Rng.nextBelow(8)], scratch(Rng), anyReg(Rng),
                          0, static_cast<int32_t>(Rng.next64())));
    } else if (Pick < 38) { // 64-bit constant: LdI, often + LdIH (fusible).
      uint8_t Rd = scratch(Rng);
      Prog.push_back(
          make(Opcode::LdI, Rd, 0, 0, static_cast<int32_t>(Rng.next64())));
      if (Rng.nextBelow(2) && Prog.size() < Len - 1)
        Prog.push_back(
            make(Opcode::LdIH, Rd, 0, 0, static_cast<int32_t>(Rng.next64())));
    } else if (Pick < 44) { // Bare comparison.
      Prog.push_back(make(Cmps[Rng.nextBelow(6)], scratch(Rng), anyReg(Rng),
                          anyReg(Rng), 0));
    } else if (Pick < 54) { // cmp + branch on the result (fusible pair).
      uint8_t Rd = scratch(Rng);
      Prog.push_back(
          make(Cmps[Rng.nextBelow(6)], Rd, anyReg(Rng), anyReg(Rng), 0));
      if (Prog.size() < Len - 1) {
        unsigned BrAt = static_cast<unsigned>(Prog.size());
        unsigned To = static_cast<unsigned>(Rng.nextBelow(Len));
        Opcode Br = Rng.nextBelow(2) ? Opcode::Beqz : Opcode::Bnez;
        Prog.push_back(make(Br, 0, Rd, 0, slotDisp(BrAt, To)));
      }
    } else if (Pick < 66) { // Data-region memory op, via r10/r11 base.
      uint8_t Base = Rng.nextBelow(2) ? 10 : 11;
      int32_t Disp = static_cast<int32_t>(Rng.nextBelow(512));
      if (Rng.nextBelow(2) && Prog.size() + 1 < Len - 1) {
        // AddI + dependent memory op (the fusible addressed form).
        uint8_t Rb = static_cast<uint8_t>(13 + Rng.nextBelow(2)); // r13/r14
        Prog.push_back(make(Opcode::AddI, Rb, Base, 0, Disp));
        if (Rng.nextBelow(2))
          Prog.push_back(make(Loads[Rng.nextBelow(7)], scratch(Rng), Rb, 0,
                              static_cast<int32_t>(Rng.nextBelow(64))));
        else
          Prog.push_back(make(Stores[Rng.nextBelow(4)], 0, Rb, scratch(Rng),
                              static_cast<int32_t>(Rng.nextBelow(64))));
      } else if (Rng.nextBelow(2)) {
        Prog.push_back(
            make(Loads[Rng.nextBelow(7)], scratch(Rng), Base, 0, Disp));
      } else {
        Prog.push_back(
            make(Stores[Rng.nextBelow(4)], 0, Base, scratch(Rng), Disp));
      }
    } else if (Pick < 70 && Opts.AllowWildStores) { // Wild pointer access.
      if (Rng.nextBelow(2))
        Prog.push_back(make(Loads[Rng.nextBelow(7)], scratch(Rng),
                            scratch(Rng), 0,
                            static_cast<int32_t>(Rng.next64())));
      else
        Prog.push_back(make(Stores[Rng.nextBelow(4)], 0, scratch(Rng),
                            scratch(Rng), static_cast<int32_t>(Rng.next64())));
    } else if (Pick < 75 && Opts.AllowSelfModify) { // Store into code.
      Prog.push_back(make(Stores[Rng.nextBelow(4)], 0, 12, scratch(Rng),
                          static_cast<int32_t>(Rng.nextBelow(Len) *
                                               SvmInstrSize)));
    } else if (Pick < 84) { // Jump / branch, forward or backward.
      unsigned To = static_cast<unsigned>(Rng.nextBelow(Len));
      int32_t Disp = slotDisp(Cur, To);
      if (Rng.nextBelow(8) == 0)
        Disp += 4; // Deliberately misaligned target: trap parity.
      uint64_t Which = Rng.nextBelow(3);
      if (Which == 0)
        Prog.push_back(make(Opcode::Jmp, 0, 0, 0, Disp));
      else
        Prog.push_back(make(Which == 1 ? Opcode::Beqz : Opcode::Bnez, 0,
                            scratch(Rng), 0, Disp));
    } else if (Pick < 89) { // Calls and returns (underflow included).
      uint64_t Which = Rng.nextBelow(4);
      if (Which == 0) {
        Prog.push_back(make(Opcode::Ret, 0, 0, 0, 0));
      } else if (Which == 1) {
        Prog.push_back(make(Opcode::CallR, 0, scratch(Rng), 0, 0));
      } else {
        unsigned To = static_cast<unsigned>(Rng.nextBelow(Len));
        Prog.push_back(make(Opcode::Call, 0, 0, 0, slotDisp(Cur, To)));
      }
    } else if (Pick < 95) { // Host interface.
      Opcode Op = Rng.nextBelow(2) ? Opcode::Tcall : Opcode::Ocall;
      Prog.push_back(make(Op, 0, 0, 0,
                          static_cast<int32_t>(Rng.nextBelow(8))));
    } else if (Pick < 97) { // Explicit trap / early halt.
      if (Rng.nextBelow(2))
        Prog.push_back(make(Opcode::Trap, 0, 0, 0,
                            static_cast<int32_t>(Rng.nextBelow(100))));
      else
        Prog.push_back(make(Opcode::Halt, 0, 0, 0, 0));
    } else { // Raw garbage: undefined opcodes, junk fields.
      uint8_t Raw[8];
      Rng.fill(MutableBytesView(Raw, 8));
      Instruction I = decodeInstruction(Raw);
      Prog.push_back(I);
    }
  }
  Prog.push_back(make(Opcode::Halt, 0, 0, 0, 0));

  Bytes Code;
  for (const Instruction &I : Prog)
    emitInstruction(Code, I);
  return Code;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

namespace {

/// Deterministic tcall behavior, a pure function of (Index, VM state):
///   index % 4 == 0 -> arithmetic on r2/r3
///   index % 4 == 1 -> restore-style write of a valid instruction into a
///                     code slot derived from the index (the case the
///                     threaded engine's journal sync exists for)
///   index % 4 == 2 -> handler error (HandlerFault parity)
///   index % 4 == 3 -> read-back of a data word
Expected<uint64_t> harnessTcall(uint32_t Index, Vm &V,
                                const ProgramOptions &Opts) {
  switch (Index % 4) {
  case 0:
    return V.reg(2) + V.reg(3) * 3 + Index;
  case 1: {
    Instruction I;
    I.Op = Opcode::AddI;
    I.Rd = 5;
    I.Rs1 = 5;
    I.Imm = static_cast<int32_t>(Index + 1);
    uint8_t Enc[8];
    encodeInstruction(I, Enc);
    uint64_t Slot = (Index * 7 + 3) % Opts.MaxInstructions;
    if (Error E = V.writeBytes(Slot * SvmInstrSize, BytesView(Enc, 8)))
      return E;
    return Slot;
  }
  case 2:
    return makeError("harness tcall #" + std::to_string(Index) + " refuses");
  default: {
    ELIDE_TRY(Bytes Word, V.readBytes(Opts.MemorySize / 2, 8));
    return readLE64(Word.data());
  }
  }
}

Expected<uint64_t> harnessOcall(uint32_t Index, Vm &V) {
  if (Index % 4 == 2)
    return makeError("harness ocall #" + std::to_string(Index) + " refuses");
  return (V.reg(2) ^ V.reg(4)) + Index * 17;
}

} // namespace

Outcome elide::vmdiff::runProgram(BytesView Code, VmBackendKind Kind,
                                  const ProgramOptions &Opts) {
  FlatMemory Memory(Opts.MemorySize);
  size_t N = std::min<size_t>(Code.size(), Opts.MemorySize);
  if (N)
    std::memcpy(Memory.raw().data(), Code.data(), N);

  Vm Machine(Memory);
  Machine.setBackend(Kind);
  Machine.setTcallHandler([&Opts](uint32_t Index, Vm &V) {
    return harnessTcall(Index, V, Opts);
  });
  Machine.setOcallHandler(
      [](uint32_t Index, Vm &V) { return harnessOcall(Index, V); });

  Outcome Out;
  Out.Exec = Machine.run(0, Opts.Budget);
  for (unsigned R = 0; R < SvmRegCount; ++R)
    Out.Regs[R] = Machine.reg(R);
  Out.Memory = Memory.raw();
  return Out;
}

std::string elide::vmdiff::diffProgram(BytesView Code,
                                       const ProgramOptions &Opts) {
  const std::vector<VmBackendKind> &Kinds = allVmBackendKinds();
  Outcome Ref = runProgram(Code, Kinds.front(), Opts);

  for (size_t K = 1; K < Kinds.size(); ++K) {
    Outcome Got = runProgram(Code, Kinds[K], Opts);
    std::string Who = std::string(vmBackendKindName(Kinds[K])) + " vs " +
                      vmBackendKindName(Kinds.front());

    if (Got.Exec.Kind != Ref.Exec.Kind)
      return Who + ": trap kind '" + trapKindName(Got.Exec.Kind) + "' != '" +
             trapKindName(Ref.Exec.Kind) + "'";
    if (Got.Exec.Pc != Ref.Exec.Pc)
      return Who + ": pc " + std::to_string(Got.Exec.Pc) + " != " +
             std::to_string(Ref.Exec.Pc);
    if (Got.Exec.InstructionsRetired != Ref.Exec.InstructionsRetired)
      return Who + ": retired " +
             std::to_string(Got.Exec.InstructionsRetired) + " != " +
             std::to_string(Ref.Exec.InstructionsRetired);
    if (Got.Exec.ReturnValue != Ref.Exec.ReturnValue)
      return Who + ": return value " + std::to_string(Got.Exec.ReturnValue) +
             " != " + std::to_string(Ref.Exec.ReturnValue);
    if (Got.Exec.TrapCode != Ref.Exec.TrapCode)
      return Who + ": trap code " + std::to_string(Got.Exec.TrapCode) +
             " != " + std::to_string(Ref.Exec.TrapCode);
    if (Got.Exec.Message != Ref.Exec.Message)
      return Who + ": message '" + Got.Exec.Message + "' != '" +
             Ref.Exec.Message + "'";
    for (unsigned R = 0; R < SvmRegCount; ++R)
      if (Got.Regs[R] != Ref.Regs[R])
        return Who + ": r" + std::to_string(R) + " = " +
               std::to_string(Got.Regs[R]) + " != " +
               std::to_string(Ref.Regs[R]);
    if (Got.Memory != Ref.Memory) {
      size_t At = 0;
      while (At < Got.Memory.size() && Got.Memory[At] == Ref.Memory[At])
        ++At;
      return Who + ": memory differs at 0x" + std::to_string(At);
    }
  }
  return std::string();
}
