//===- tests/ServerTest.cpp - Protocol and AuthServer unit tests --------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/AuthServer.h"
#include "server/Transport.h"
#include "sgx/Attestation.h"
#include "tests/framework/TestNet.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

using namespace elide;

namespace {

//===----------------------------------------------------------------------===//
// Record layer
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, SessionKeysAreDirectional) {
  Drbg Rng(1);
  X25519Key A{}, B{};
  Rng.fill(MutableBytesView(A.data(), 32));
  Rng.fill(MutableBytesView(B.data(), 32));
  X25519Key APub = x25519PublicKey(A);
  X25519Key BPub = x25519PublicKey(B);
  X25519Key Shared = x25519(A, BPub);
  X25519Key Shared2 = x25519(B, APub);
  ASSERT_EQ(Shared, Shared2);

  SessionKeys Keys = deriveSessionKeys(Shared, APub, BPub);
  EXPECT_NE(Keys.ClientToServer, Keys.ServerToClient);

  // Keys bind the transcript: swapping the public keys changes them.
  SessionKeys Swapped = deriveSessionKeys(Shared, BPub, APub);
  EXPECT_NE(Keys.ClientToServer, Swapped.ClientToServer);
}

TEST(ProtocolTest, RecordRoundTrip) {
  Aes128Key Key{};
  Key[0] = 1;
  Drbg Rng(2);
  Bytes Plain = bytesOfString("REQUEST_META");
  Expected<Bytes> Frame = sealRecord(Key, Plain, Rng);
  ASSERT_TRUE(static_cast<bool>(Frame));
  EXPECT_EQ((*Frame)[0], FrameRecord);
  Expected<Bytes> Back = openRecord(Key, *Frame);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(*Back, Plain);
}

TEST(ProtocolTest, RecordRejectsTamperAndWrongKey) {
  Aes128Key Key{}, Other{};
  Other[5] = 9;
  Drbg Rng(3);
  Expected<Bytes> Frame = sealRecord(Key, bytesOfString("x"), Rng);
  ASSERT_TRUE(static_cast<bool>(Frame));

  Bytes Bad = *Frame;
  Bad.back() ^= 1;
  EXPECT_FALSE(static_cast<bool>(openRecord(Key, Bad)));
  EXPECT_FALSE(static_cast<bool>(openRecord(Other, *Frame)));
  EXPECT_FALSE(static_cast<bool>(openRecord(Key, Bytes(5, 0))));
}

TEST(ProtocolTest, ErrorFramesSurfaceAsErrors) {
  Aes128Key Key{};
  Bytes Frame = errorFrame("nope");
  Expected<Bytes> R = openRecord(Key, Frame);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.errorMessage().find("nope"), std::string::npos);
}

TEST(ProtocolTest, SessionRecordRoundTripAndPeek) {
  Aes128Key Key{};
  Key[3] = 7;
  Drbg Rng(5);
  Bytes Plain = Bytes{RequestMeta};
  Expected<Bytes> Frame = sealSessionRecord(0x1122334455667788ULL, Key,
                                            Plain, Rng);
  ASSERT_TRUE(static_cast<bool>(Frame));
  Expected<uint64_t> Sid = peekSessionId(*Frame);
  ASSERT_TRUE(static_cast<bool>(Sid));
  EXPECT_EQ(*Sid, 0x1122334455667788ULL);
  Expected<Bytes> Back = openSessionRecord(Key, *Frame);
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.errorMessage();
  EXPECT_EQ(*Back, Plain);
}

TEST(ProtocolTest, SessionIdIsAuthenticated) {
  // The id is a selector, not a capability -- but it is still bound into
  // the GCM AAD, so redirecting a record to another session id fails.
  Aes128Key Key{};
  Drbg Rng(6);
  Expected<Bytes> Frame = sealSessionRecord(42, Key, Bytes{RequestData}, Rng);
  ASSERT_TRUE(static_cast<bool>(Frame));
  Bytes Redirected = *Frame;
  Redirected[1] ^= 0x01; // Session id 42 -> 43.
  EXPECT_FALSE(static_cast<bool>(openSessionRecord(Key, Redirected)));
}

//===----------------------------------------------------------------------===//
// AuthServer protocol behavior (driven without an enclave: we forge the
// client side directly to probe edge cases)
//===----------------------------------------------------------------------===//

struct ServerFixture {
  sgx::SgxDevice Device{1};
  sgx::AttestationAuthority Authority{2};
  sgx::QuotingEnclave Qe{Device, Authority};
  SecretMeta Meta;
  Bytes Data = bytesOfString("SECRET-TEXT-SECTION-BYTES");
  sgx::Measurement GoodMr{};

  AuthServer makeServer() {
    Meta.DataLength = Data.size();
    Meta.RestoreOffset = 0x40;
    AuthServerConfig Config;
    Config.AuthorityKey = Authority.publicKey();
    GoodMr.fill(0x11);
    Config.ExpectedMrEnclave = GoodMr;
    Config.Meta = Meta;
    Config.SecretData = Data;
    return AuthServer(std::move(Config));
  }

  /// Produces a valid HELLO for a given measurement, plus the client's
  /// ephemeral keys.
  Bytes makeHello(const sgx::Measurement &Mr, X25519Key &PrivOut) {
    Drbg Rng(7);
    Rng.fill(MutableBytesView(PrivOut.data(), 32));
    X25519Key Pub = x25519PublicKey(PrivOut);

    // Forge the report path the way a real enclave on this device would:
    // derive the QE report key via an enclave stand-in. We construct the
    // report by hand using an enclave built with measurement-shaping --
    // simpler: use the device key derivation through a scratch enclave is
    // overkill; instead access the quote path via a real tiny enclave.
    // For protocol-level tests it is enough to produce a quote signed by
    // the real QE for a report we can mint. We mint it through a scratch
    // enclave whose measurement we cannot choose -- so for the
    // *matching* case we instead set the server's expectation to the
    // scratch enclave's measurement.
    (void)Mr;
    sgx::SgxDevice::Builder B(Device, 0x4000);
    EXPECT_FALSE(static_cast<bool>(
        B.addPage(0x1000, sgx::PermRead, Bytes(8, 0x33))));
    Drbg VendorRng(9);
    Ed25519Seed Seed{};
    VendorRng.fill(MutableBytesView(Seed.data(), 32));
    sgx::SigStruct Sig = sgx::SigStruct::sign(
        ed25519KeyPairFromSeed(Seed), B.currentMeasurement(), 0);
    Expected<std::unique_ptr<sgx::Enclave>> E = B.init(Sig);
    EXPECT_TRUE(static_cast<bool>(E));
    ScratchMr = (*E)->mrEnclave();

    sgx::ReportData Rd{};
    std::memcpy(Rd.data(), Pub.data(), 32);
    sgx::Report R = (*E)->createReport(Qe.targetInfo(), Rd);
    Expected<sgx::Quote> Q = Qe.quoteReport(R);
    EXPECT_TRUE(static_cast<bool>(Q));

    Bytes Hello;
    Hello.push_back(FrameHello);
    appendBytes(Hello, Q->serialize());
    return Hello;
  }

  sgx::Measurement ScratchMr{};
};

TEST(AuthServerTest, RejectsRequestsBeforeHandshake) {
  ServerFixture F;
  AuthServer Server = F.makeServer();
  Aes128Key Junk{};
  Drbg Rng(1);
  Expected<Bytes> Frame = sealRecord(Junk, Bytes{RequestMeta}, Rng);
  ASSERT_TRUE(static_cast<bool>(Frame));
  Bytes Resp = Server.handle(*Frame);
  EXPECT_EQ(Resp[0], FrameError);
}

TEST(AuthServerTest, RejectsGarbageFrames) {
  ServerFixture F;
  AuthServer Server = F.makeServer();
  EXPECT_EQ(Server.handle(Bytes{})[0], FrameError);
  EXPECT_EQ(Server.handle(Bytes{0x77, 1, 2})[0], FrameError);
  Bytes BadHello = {FrameHello, 1, 2, 3};
  EXPECT_EQ(Server.handle(BadHello)[0], FrameError);
  EXPECT_EQ(Server.stats().HandshakesRejected, 1u);
}

TEST(AuthServerTest, RejectsWrongMeasurementAndAcceptsRight) {
  ServerFixture F;
  X25519Key Priv;
  Bytes Hello = F.makeHello({}, Priv);

  // Server pinned to a different measurement: reject.
  {
    AuthServer Server = F.makeServer(); // expects 0x11... measurement
    Bytes Resp = Server.handle(Hello);
    EXPECT_EQ(Resp[0], FrameError);
    EXPECT_EQ(Server.stats().HandshakesRejected, 1u);
  }

  // Server pinned to the scratch enclave's measurement: full exchange.
  {
    F.Meta.DataLength = F.Data.size();
    AuthServerConfig Config;
    Config.AuthorityKey = F.Authority.publicKey();
    Config.ExpectedMrEnclave = F.ScratchMr;
    Config.Meta = F.Meta;
    Config.SecretData = F.Data;
    AuthServer Server(std::move(Config));

    Bytes Resp = Server.handle(Hello);
    ASSERT_EQ(Resp[0], FrameHello);
    ASSERT_EQ(Resp.size(), HelloOkSize);
    uint64_t Sid = 0;
    for (size_t I = 0; I < SessionIdSize; ++I)
      Sid |= static_cast<uint64_t>(Resp[1 + I]) << (8 * I);
    EXPECT_NE(Sid, 0u);
    X25519Key ServerPub;
    std::memcpy(ServerPub.data(), Resp.data() + 1 + SessionIdSize, 32);
    X25519Key Shared = x25519(Priv, ServerPub);
    SessionKeys Keys =
        deriveSessionKeys(Shared, x25519PublicKey(Priv), ServerPub);

    // REQUEST_META.
    Drbg Rng(8);
    Expected<Bytes> Req =
        sealSessionRecord(Sid, Keys.ClientToServer, Bytes{RequestMeta}, Rng);
    ASSERT_TRUE(static_cast<bool>(Req));
    Bytes MetaResp = Server.handle(*Req);
    Expected<Bytes> MetaPlain = openRecord(Keys.ServerToClient, MetaResp);
    ASSERT_TRUE(static_cast<bool>(MetaPlain)) << MetaPlain.errorMessage();
    Expected<SecretMeta> Meta = SecretMeta::deserialize(*MetaPlain);
    ASSERT_TRUE(static_cast<bool>(Meta));
    EXPECT_EQ(Meta->DataLength, F.Data.size());

    // REQUEST_DATA.
    Expected<Bytes> Req2 =
        sealSessionRecord(Sid, Keys.ClientToServer, Bytes{RequestData}, Rng);
    ASSERT_TRUE(static_cast<bool>(Req2));
    Expected<Bytes> DataPlain =
        openRecord(Keys.ServerToClient, Server.handle(*Req2));
    ASSERT_TRUE(static_cast<bool>(DataPlain));
    EXPECT_EQ(*DataPlain, F.Data);

    // Unknown request byte and oversized requests are rejected.
    Expected<Bytes> Req3 =
        sealSessionRecord(Sid, Keys.ClientToServer, Bytes{0x7a}, Rng);
    ASSERT_TRUE(static_cast<bool>(Req3));
    EXPECT_EQ(Server.handle(*Req3)[0], FrameError);
    Expected<Bytes> Req4 =
        sealSessionRecord(Sid, Keys.ClientToServer, Bytes{RequestMeta, 0},
                          Rng);
    ASSERT_TRUE(static_cast<bool>(Req4));
    EXPECT_EQ(Server.handle(*Req4)[0], FrameError);

    // A record aimed at a different session id fails cleanly: the id
    // selects no session (or the AAD check fails), never another
    // client's keys. The error carries the typed re-attest marker -- the
    // session is stale (unknown/evicted/recycled), and the cure is a
    // fresh HELLO, not a retry of this frame.
    Expected<Bytes> Req5 =
        sealSessionRecord(Sid + 1, Keys.ClientToServer, Bytes{RequestData},
                          Rng);
    ASSERT_TRUE(static_cast<bool>(Req5));
    Bytes StaleResp = Server.handle(*Req5);
    ASSERT_FALSE(StaleResp.empty());
    EXPECT_EQ(StaleResp[0], FrameError);
    EXPECT_TRUE(errorAsksReattest(
        std::string(StaleResp.begin() + 1, StaleResp.end())));
    EXPECT_EQ(Server.stats().StaleSessionRequests, 1u);

    EXPECT_EQ(Server.stats().HandshakesCompleted, 1u);
    EXPECT_EQ(Server.stats().MetaRequests, 1u);
    EXPECT_EQ(Server.stats().DataRequests, 1u);
    EXPECT_EQ(Server.stats().LiveSessions, 1u);
  }
}

TEST(AuthServerTest, LocalModeRefusesDataRequests) {
  ServerFixture F;
  X25519Key Priv;
  Bytes Hello = F.makeHello({}, Priv);

  AuthServerConfig Config;
  Config.AuthorityKey = F.Authority.publicKey();
  Config.ExpectedMrEnclave = F.ScratchMr;
  F.Meta.Encrypted = true; // local-data mode
  Config.Meta = F.Meta;
  AuthServer Server(std::move(Config));

  Bytes Resp = Server.handle(Hello);
  ASSERT_EQ(Resp[0], FrameHello);
  ASSERT_EQ(Resp.size(), HelloOkSize);
  uint64_t Sid = 0;
  for (size_t I = 0; I < SessionIdSize; ++I)
    Sid |= static_cast<uint64_t>(Resp[1 + I]) << (8 * I);
  X25519Key ServerPub;
  std::memcpy(ServerPub.data(), Resp.data() + 1 + SessionIdSize, 32);
  SessionKeys Keys = deriveSessionKeys(x25519(Priv, ServerPub),
                                       x25519PublicKey(Priv), ServerPub);
  Drbg Rng(4);
  Expected<Bytes> Req =
      sealSessionRecord(Sid, Keys.ClientToServer, Bytes{RequestData}, Rng);
  ASSERT_TRUE(static_cast<bool>(Req));
  EXPECT_EQ(Server.handle(*Req)[0], FrameError);
}

//===----------------------------------------------------------------------===//
// TCP transport
//===----------------------------------------------------------------------===//

TEST(TcpTransportTest, FramesSurviveTheWire) {
  ServerFixture F;
  AuthServer Server = F.makeServer();
  Expected<std::unique_ptr<TcpServer>> Tcp = TcpServer::start(Server);
  ASSERT_TRUE(static_cast<bool>(Tcp)) << Tcp.errorMessage();

  TcpClientTransport Client("127.0.0.1", (*Tcp)->port());
  // A garbage frame must come back as a server ERROR frame, intact.
  Expected<Bytes> Resp = Client.roundTrip(Bytes{0x99});
  ASSERT_TRUE(static_cast<bool>(Resp)) << Resp.errorMessage();
  EXPECT_EQ((*Resp)[0], FrameError);

  // Several sequential round trips on separate connections.
  for (int I = 0; I < 5; ++I) {
    Expected<Bytes> R = Client.roundTrip(Bytes{0x42});
    ASSERT_TRUE(static_cast<bool>(R));
    EXPECT_EQ((*R)[0], FrameError);
  }
  (*Tcp)->stop();
}

TEST(TcpTransportTest, ConnectToClosedPortFailsTyped) {
  // A port this process owns (bound, never listened): connecting to it is
  // refused deterministically even under ctest -j.
  elide::testing::ClosedPort Closed;
  ASSERT_TRUE(Closed.ok());
  TcpClientConfig Config;
  Config.MaxAttempts = 2;
  Config.BackoffBaseMs = 1;
  TcpClientTransport Client("127.0.0.1", Closed.port(), Config);
  Expected<Bytes> R = Client.roundTrip(Bytes{1});
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(transportErrcOf(R), TransportErrc::RetriesExhausted);
  EXPECT_EQ(Client.lastAttempts(), 2);
}

TEST(TcpTransportTest, SingleAttemptSurfacesUnderlyingError) {
  elide::testing::ClosedPort Closed;
  ASSERT_TRUE(Closed.ok());
  TcpClientConfig Config;
  Config.MaxAttempts = 1;
  TcpClientTransport Client("127.0.0.1", Closed.port(), Config);
  Expected<Bytes> R = Client.roundTrip(Bytes{1});
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(transportErrcOf(R), TransportErrc::ConnectFailed);
  EXPECT_EQ(Client.lastAttempts(), 1);
}

TEST(TcpTransportTest, BadAddressIsNotRetried) {
  TcpClientConfig Config;
  Config.MaxAttempts = 5;
  TcpClientTransport Client("definitely-not-a-host.invalid", 9, Config);
  Expected<Bytes> R = Client.roundTrip(Bytes{1});
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(transportErrcOf(R), TransportErrc::BadAddress);
  EXPECT_EQ(Client.lastAttempts(), 1);
}

} // namespace
