//===- analysis/FlowCheck.cpp - AUD5xx secret-flow checkers ----------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant-time and taint-flow checking over the *restored* view of the
/// text section. Elision hides the secret code from the shipped file, but
/// SgxPectre-style attacks show that restored code which branches or
/// indexes memory on its own secrets leaks them anyway -- through timing,
/// the cache, or a speculation window. These checkers run the taint
/// engine with the elided/restored ranges as sources:
///
///   AUD501  conditional branch on secret-derived data (error);
///   AUD502  load/store address derived from secret data (error);
///   AUD503  early-exit compare loop over secret data -- the classic
///           `memcmp` timing oracle (warning);
///   AUD511  secret-derived value in an ocall argument register (warning);
///   AUD521  speculative double-dependent-load gadget (warning);
///   AUD522  indirect call through a secret-derived register (warning).
///
/// The restored view: when the caller supplies the original text bytes
/// (`SecretPlaintext` of exactly the section's size -- the sanitizer's
/// self-audit and `sgxelide audit --data` both do), analysis runs over
/// them; otherwise over the shipped section as-is, which still covers
/// unsanitized images where the secret code is plainly present. On a
/// sanitized image without the plaintext the elided ranges are zeroed,
/// nothing decodes there, and the checkers are quietly vacuous.
///
/// These families are opt-in (`--ct`, `--taint`): real workloads such as
/// table-based AES are *legitimately* non-constant-time in this ISA, so
/// unlike 1xx-4xx/6xx they express a policy, not an invariant.
///
//===----------------------------------------------------------------------===//

#include "analysis/Audit.h"
#include "analysis/Cfg.h"
#include "analysis/Taint.h"
#include "vm/Disassembler.h"

#include <cstdio>

namespace elide {
namespace analysis {

namespace {

std::string hexString(uint64_t V) {
  char B[32];
  std::snprintf(B, sizeof(B), "%llx", (unsigned long long)V);
  return B;
}

bool startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

} // namespace

void checkSecretFlow(const AuditInput &Input, const AuditOptions &Options,
                     DiagnosticEngine &Engine) {
  const ElfImage &Image = *Input.Image;
  const ElfSection *Text = Image.sectionByName(Input.TextSection);
  if (!Text)
    return;

  Bytes Code = Image.sectionContents(*Text);
  // Restored view: the original text bytes replace the sanitized ones
  // when the caller supplied them (both storage modes record the whole
  // original section).
  if (Input.SecretPlaintext.size() == Code.size() && !Code.empty())
    Code = Input.SecretPlaintext;

  std::vector<ElidedRegion> Regions = effectiveElidedRegions(Input, nullptr);

  TaintOptions TO;
  for (const ElidedRegion &R : Regions)
    TO.SecretRanges.push_back(
        {Text->Addr + R.Offset, Text->Addr + R.Offset + R.Length});
  if (TO.SecretRanges.empty())
    return; // Nothing is secret; nothing can leak.

  // Roots: every bridge (ecalls reach restored code through them), the
  // restore entry, and each secret region's start -- so a stripped image
  // whose bridges were scrubbed still gets its restored functions walked.
  std::vector<uint64_t> Roots;
  for (const ElfSymbol &Sym : Image.symbols())
    if (startsWith(Sym.Name, Input.BridgePrefix) || Sym.Name == Input.RestoreSymbol)
      Roots.push_back(Sym.Value);
  for (const ElidedRegion &R : Regions)
    Roots.push_back(Text->Addr + R.Offset);

  Cfg G = Cfg::build(BytesView(Code.data(), Code.size()), Text->Addr, Roots);
  TaintResult TR = runTaint(G, TO);

  auto regionNameAt = [&](uint64_t Pc) -> std::string {
    for (const ElidedRegion &R : Regions)
      if (Pc >= Text->Addr + R.Offset && Pc < Text->Addr + R.Offset + R.Length)
        return R.Name;
    return "";
  };
  auto originSuffix = [&](const TaintSink &S) -> std::string {
    if (!S.OriginPc)
      return "";
    return " (secret loaded at .text+0x" +
           hexString(S.OriginPc - Text->Addr) + ")";
  };

  bool WantCt = (Options.Checks & CheckConstantTime) != 0;
  bool WantTaint = (Options.Checks & CheckTaintFlow) != 0;

  constexpr size_t MaxPerCode = 8;
  size_t Counts[6] = {0, 0, 0, 0, 0, 0};
  for (const TaintSink &S : TR.Sinks) {
    uint64_t Off = S.Pc - Text->Addr;
    std::string Sym = regionNameAt(S.Pc);
    std::string Reg = "r" + std::to_string(S.Reg);
    switch (S.Kind) {
    case SinkKind::Branch:
      if (WantCt && ++Counts[0] <= MaxPerCode)
        Engine.report(AudSecretDependentBranch, Severity::Error,
                      "conditional branch on secret-derived " + Reg +
                          originSuffix(S),
                      Input.TextSection, Off, SvmInstrSize, Sym);
      break;
    case SinkKind::MemoryAddress:
      if (WantCt && ++Counts[1] <= MaxPerCode)
        Engine.report(AudSecretDependentAddress, Severity::Error,
                      "memory address derived from secret " + Reg +
                          "; the access pattern keys the cache on the "
                          "secret" +
                          originSuffix(S),
                      Input.TextSection, Off, SvmInstrSize, Sym);
      break;
    case SinkKind::CompareLoopBranch:
      if (WantCt && ++Counts[2] <= MaxPerCode)
        Engine.report(AudTimingDependentCompare, Severity::Warning,
                      "early-exit compare loop over secret data: the "
                      "iteration count is a timing oracle" +
                          originSuffix(S),
                      Input.TextSection, Off, SvmInstrSize, Sym);
      break;
    case SinkKind::OcallArg:
      if (WantTaint && ++Counts[3] <= MaxPerCode)
        Engine.report(AudTaintedOcallArg, Severity::Warning,
                      "ocall argument " + Reg +
                          " carries a secret-derived value across the "
                          "enclave boundary" +
                          originSuffix(S),
                      Input.TextSection, Off, SvmInstrSize, Sym);
      break;
    case SinkKind::SpecDoubleLoad:
      if (WantTaint && ++Counts[4] <= MaxPerCode)
        Engine.report(AudSpecGadget, Severity::Warning,
                      "speculative gadget: secret-tainted load value in " +
                          Reg +
                          " forms a second load address inside the "
                          "speculation window of a prior branch" +
                          originSuffix(S),
                      Input.TextSection, Off, SvmInstrSize, Sym);
      break;
    case SinkKind::IndirectTarget:
      if (WantTaint && ++Counts[5] <= MaxPerCode)
        Engine.report(AudTaintedIndirectTarget, Severity::Warning,
                      "indirect call through secret-derived " + Reg +
                          originSuffix(S),
                      Input.TextSection, Off, SvmInstrSize, Sym);
      break;
    }
  }
}

} // namespace analysis
} // namespace elide
