# Empty dependencies file for ablation_sgx2_emodpe.
# This may be replaced when dependencies are built.
