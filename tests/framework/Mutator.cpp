//===- tests/framework/Mutator.cpp - Seeded byte mutators -------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tests/framework/Mutator.h"

#include <algorithm>

using namespace elide;
using namespace elide::fuzz;

namespace {

constexpr uint64_t Interesting64[] = {
    0,
    1,
    0x7f,
    0x80,
    0xff,
    0x100,
    0x7fff,
    0x8000,
    0xffff,
    0x10000,
    0x7fffffffull,
    0x80000000ull,
    0xffffffffull,
    0x100000000ull,
    0x7fffffffffffffffull,
    0x8000000000000000ull,
    0xffffffffffffffffull,
    // Values that make `offset + size` wrap just past 2^64 when paired
    // with a small partner -- the exact shape that defeats `a + b > n`.
    0xffffffffffffff00ull,
    0xfffffffffffff000ull,
    0xffffffffffff0000ull,
};

constexpr size_t InterestingCount =
    sizeof(Interesting64) / sizeof(Interesting64[0]);

} // namespace

uint64_t fuzz::pickInteresting64(Drbg &Rng) {
  return Interesting64[Rng.nextBelow(InterestingCount)];
}

void fuzz::spliceInterestingAt(Bytes &Data, size_t Offset, Drbg &Rng) {
  if (Data.empty())
    return;
  Offset = std::min(Offset, Data.size() - 1);
  uint64_t V = pickInteresting64(Rng);
  uint8_t Tmp[8];
  writeLE64(Tmp, V);
  size_t N = std::min<size_t>(8, Data.size() - Offset);
  std::copy(Tmp, Tmp + N, Data.begin() + static_cast<ptrdiff_t>(Offset));
}

void fuzz::spliceInteresting(Bytes &Data, Drbg &Rng) {
  if (Data.empty())
    return;
  size_t Widths[] = {1, 2, 4, 8};
  size_t Width = Widths[Rng.nextBelow(4)];
  size_t Offset = Rng.nextBelow(Data.size());
  uint64_t V = pickInteresting64(Rng);
  uint8_t Tmp[8];
  writeLE64(Tmp, V);
  size_t N = std::min(Width, Data.size() - Offset);
  std::copy(Tmp, Tmp + N, Data.begin() + static_cast<ptrdiff_t>(Offset));
}

void fuzz::mutateOnce(Bytes &Data, Drbg &Rng) {
  // Empty buffers can only grow.
  if (Data.empty()) {
    Data = Rng.bytes(1 + Rng.nextBelow(16));
    return;
  }
  switch (Rng.nextBelow(7)) {
  case 0: { // Bit flip.
    size_t Bit = Rng.nextBelow(Data.size() * 8);
    Data[Bit / 8] ^= static_cast<uint8_t>(1u << (Bit % 8));
    break;
  }
  case 1: { // Byte rewrite.
    Data[Rng.nextBelow(Data.size())] = static_cast<uint8_t>(Rng.next64());
    break;
  }
  case 2: { // Delete a chunk.
    size_t Start = Rng.nextBelow(Data.size());
    size_t Len = 1 + Rng.nextBelow(Data.size() - Start);
    Data.erase(Data.begin() + static_cast<ptrdiff_t>(Start),
               Data.begin() + static_cast<ptrdiff_t>(Start + Len));
    break;
  }
  case 3: { // Duplicate a chunk in place.
    size_t Start = Rng.nextBelow(Data.size());
    size_t Len = 1 + Rng.nextBelow(
                         std::min<size_t>(Data.size() - Start, 64));
    Bytes Chunk(Data.begin() + static_cast<ptrdiff_t>(Start),
                Data.begin() + static_cast<ptrdiff_t>(Start + Len));
    size_t At = Rng.nextBelow(Data.size() + 1);
    Data.insert(Data.begin() + static_cast<ptrdiff_t>(At), Chunk.begin(),
                Chunk.end());
    break;
  }
  case 4: { // Insert random bytes.
    Bytes Chunk = Rng.bytes(1 + Rng.nextBelow(16));
    size_t At = Rng.nextBelow(Data.size() + 1);
    Data.insert(Data.begin() + static_cast<ptrdiff_t>(At), Chunk.begin(),
                Chunk.end());
    break;
  }
  case 5: { // Truncate.
    Data.resize(Rng.nextBelow(Data.size()) + 1);
    break;
  }
  case 6: // Interesting-value splice.
    spliceInteresting(Data, Rng);
    break;
  }
}

Bytes fuzz::mutate(BytesView Input, Drbg &Rng, size_t MaxMutations) {
  Bytes Out = toBytes(Input);
  size_t N = 1 + Rng.nextBelow(MaxMutations);
  for (size_t I = 0; I < N; ++I)
    mutateOnce(Out, Rng);
  return Out;
}

Bytes fuzz::crossover(BytesView Input, BytesView Other, Drbg &Rng) {
  Bytes Out = toBytes(Input);
  if (Other.empty())
    return Out;
  size_t SrcStart = Rng.nextBelow(Other.size());
  size_t SrcLen = 1 + Rng.nextBelow(Other.size() - SrcStart);
  size_t At = Out.empty() ? 0 : Rng.nextBelow(Out.size() + 1);
  if (!Out.empty() && Rng.nextBelow(2) == 0) {
    // Overwrite mode.
    for (size_t I = 0; I < SrcLen && At + I < Out.size(); ++I)
      Out[At + I] = Other[SrcStart + I];
  } else {
    // Insert mode.
    Out.insert(Out.begin() + static_cast<ptrdiff_t>(At),
               Other.begin() + static_cast<ptrdiff_t>(SrcStart),
               Other.begin() + static_cast<ptrdiff_t>(SrcStart + SrcLen));
  }
  return Out;
}
