//===- tests/OverloadTest.cpp - End-to-end overload resilience suite ----------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The overload-resilience suite (`ctest -L overload`): deadline
/// propagation through the request envelope and the TCP retry loop,
/// criticality-aware admission control and brownout shedding on the
/// server, the chain-wide retry budget on the provisioning client, the
/// supervisor marking recovery traffic Sheddable -- and a deterministic
/// metastable-failure soak proving the budget is what separates a
/// transient overload spike from a self-sustaining congestion collapse.
///
/// Every seeded test routes its randomness through `ChaosSeedScope`, so a
/// failure prints a one-line `ELIDE_CHAOS_SEED=...` reproduction recipe.
///
//===----------------------------------------------------------------------===//

#include "elide/Pipeline.h"
#include "elide/Provisioner.h"
#include "elide/Supervisor.h"
#include "server/AuthServer.h"
#include "server/Transport.h"
#include "sgx/EnclaveLoader.h"
#include "support/AtomicFile.h"
#include "support/File.h"
#include "tests/framework/ChaosSeed.h"
#include "tests/framework/TestNet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

using namespace elide;
using elide::testing::ChaosSeedScope;
using elide::testing::ClosedPort;

namespace {

//===----------------------------------------------------------------------===//
// Shared scaffolding
//===----------------------------------------------------------------------===//

/// A minimal server whose trust anchors are real but whose clients are
/// garbage frames: enough to exercise shedding, admission control, and
/// envelope handling without paying a pipeline build per test.
AuthServerConfig bareServerConfig(double DegradedMs = 0.0,
                                  double ShedMs = 0.0) {
  static const sgx::AttestationAuthority Authority(2002);
  AuthServerConfig Config;
  Config.AuthorityKey = Authority.publicKey();
  Config.ExpectedMrEnclave.fill(0x42);
  Config.Meta.DataLength = 64;
  Config.SecretData = Bytes(64, 0xaa);
  Config.BrownoutDegradedMs = DegradedMs;
  Config.BrownoutShedMs = ShedMs;
  Config.EwmaAlpha = 1.0; // EWMA == last sample: tests pick exact modes.
  return Config;
}

FrameContext delayed(double QueueDelayMs) {
  FrameContext Ctx;
  Ctx.QueueDelayMs = QueueDelayMs;
  return Ctx;
}

/// A scriptable in-process endpoint for Provisioner budget tests.
struct StubTransport : Transport {
  std::function<Expected<Bytes>(BytesView)> Fn;
  explicit StubTransport(std::function<Expected<Bytes>(BytesView)> Fn)
      : Fn(std::move(Fn)) {}
  Expected<Bytes> roundTrip(BytesView Request) override {
    return Fn(Request);
  }
};

Bytes garbageRecord() { return Bytes{FrameRecord, 0x00, 0x01, 0x02}; }
Bytes garbageHello() { return Bytes{FrameHello, 0x13, 0x37}; }

//===----------------------------------------------------------------------===//
// Envelope round-trip and strict rejection
//===----------------------------------------------------------------------===//

TEST(OverloadEnvelopeTest, RoundTripPreservesDeadlineClassAndInner) {
  Bytes Inner = garbageRecord();
  Bytes Frame = envelopeFrame(1500, Criticality::Sheddable, Inner);
  ASSERT_EQ(Frame.size(), EnvelopeHeaderSize + Inner.size());
  EXPECT_EQ(Frame[0], FrameEnvelope);
  EXPECT_EQ(Frame[1], EnvelopeVersion);

  Expected<RequestEnvelope> Env = parseEnvelopeFrame(Frame);
  ASSERT_TRUE(static_cast<bool>(Env)) << Env.errorMessage();
  EXPECT_EQ(Env->DeadlineMs, 1500u);
  EXPECT_EQ(Env->Class, Criticality::Sheddable);
  EXPECT_EQ(toBytes(Env->Inner), Inner);

  // unwrapRequest agrees on envelopes and defaults bare frames.
  Expected<RequestEnvelope> Bare = unwrapRequest(Inner);
  ASSERT_TRUE(static_cast<bool>(Bare));
  EXPECT_EQ(Bare->DeadlineMs, 0u);
  EXPECT_EQ(Bare->Class, Criticality::Default);
  EXPECT_EQ(toBytes(Bare->Inner), Inner);
}

TEST(OverloadEnvelopeTest, StrictParserRejectsEveryMalformation) {
  Bytes Good = envelopeFrame(100, Criticality::Default, garbageRecord());

  Bytes BadVersion = Good;
  BadVersion[1] = 2;
  EXPECT_FALSE(static_cast<bool>(parseEnvelopeFrame(BadVersion)));

  Bytes BadClass = Good;
  BadClass[6] = 3; // One past Sheddable.
  EXPECT_FALSE(static_cast<bool>(parseEnvelopeFrame(BadClass)));

  Bytes Truncated(Good.begin(), Good.begin() + EnvelopeHeaderSize - 2);
  EXPECT_FALSE(static_cast<bool>(parseEnvelopeFrame(Truncated)));

  Bytes Empty(Good.begin(), Good.begin() + EnvelopeHeaderSize);
  EXPECT_FALSE(static_cast<bool>(parseEnvelopeFrame(Empty)));

  Bytes Nested = envelopeFrame(100, Criticality::Default, Good);
  EXPECT_FALSE(static_cast<bool>(parseEnvelopeFrame(Nested)));

  // The server answers a malformed envelope with a typed verdict and
  // counts it -- it never half-parses into a default.
  AuthServer Server(bareServerConfig());
  Bytes Response = Server.handle(BadClass);
  ASSERT_FALSE(Response.empty());
  EXPECT_EQ(Response[0], FrameError);
  EXPECT_EQ(Server.stats().EnvelopeRejected, 1u);
}

//===----------------------------------------------------------------------===//
// Server-side admission control
//===----------------------------------------------------------------------===//

TEST(OverloadAdmissionTest, QueueDelayPastDeadlineRefusedBeforeCrypto) {
  AuthServer Server(bareServerConfig());

  // A request whose budget the queue already ate: refused with the typed
  // marker, before quote parsing ever runs.
  Bytes Expired = envelopeFrame(2, Criticality::Default, garbageHello());
  Bytes Response = Server.handle(Expired, delayed(10.0));
  ASSERT_FALSE(Response.empty());
  ASSERT_EQ(Response[0], FrameError);
  std::string Message(Response.begin() + 1, Response.end());
  EXPECT_TRUE(errorSaysDeadlineExpired(Message)) << Message;
  EXPECT_EQ(Server.stats().DeadlineExpired, 1u);
  EXPECT_EQ(Server.stats().HandshakesRejected, 0u); // Never reached crypto.

  // A generous budget passes admission and reaches the handshake (which
  // rejects the garbage quote -- but *after* being served).
  Bytes Fresh = envelopeFrame(60000, Criticality::Default, garbageHello());
  Bytes Served = Server.handle(Fresh, delayed(10.0));
  ASSERT_FALSE(Served.empty());
  EXPECT_EQ(Served[0], FrameError);
  std::string ServedMessage(Served.begin() + 1, Served.end());
  EXPECT_FALSE(errorSaysDeadlineExpired(ServedMessage));
  EXPECT_EQ(Server.stats().DeadlineExpired, 1u);
  EXPECT_EQ(Server.stats().HandshakesRejected, 1u);

  // No deadline means no admission gate, whatever the queue delay says.
  Bytes NoDeadline = Server.handle(garbageHello(), delayed(5000.0));
  ASSERT_FALSE(NoDeadline.empty());
  std::string NoDeadlineMessage(NoDeadline.begin() + 1, NoDeadline.end());
  EXPECT_FALSE(errorSaysDeadlineExpired(NoDeadlineMessage));
  EXPECT_EQ(Server.stats().DeadlineExpired, 1u);
}

//===----------------------------------------------------------------------===//
// Brownout controller
//===----------------------------------------------------------------------===//

TEST(OverloadBrownoutTest, HysteresisEntersOnThresholdExitsOnHalf) {
  AuthServer Server(bareServerConfig(/*DegradedMs=*/10.0, /*ShedMs=*/100.0));
  // Critical requests are never class-shed, so the same probe frame walks
  // the controller through every mode without its answers changing shape.
  Bytes Probe = envelopeFrame(0, Criticality::Critical, garbageRecord());

  EXPECT_EQ(Server.brownoutMode(), BrownoutMode::Normal);
  Server.handle(Probe, delayed(50.0)); // Above Degraded, below Shed.
  EXPECT_EQ(Server.brownoutMode(), BrownoutMode::Degraded);
  Server.handle(Probe, delayed(200.0)); // Above Shed.
  EXPECT_EQ(Server.brownoutMode(), BrownoutMode::Shed);
  Server.handle(Probe, delayed(60.0)); // Below Shed but above Shed/2: held.
  EXPECT_EQ(Server.brownoutMode(), BrownoutMode::Shed);
  Server.handle(Probe, delayed(30.0)); // Below Shed/2: one step down.
  EXPECT_EQ(Server.brownoutMode(), BrownoutMode::Degraded);
  Server.handle(Probe, delayed(30.0)); // Above Degraded/2: held.
  EXPECT_EQ(Server.brownoutMode(), BrownoutMode::Degraded);
  Server.handle(Probe, delayed(2.0)); // Below Degraded/2: recovered.
  EXPECT_EQ(Server.brownoutMode(), BrownoutMode::Normal);

  AuthServerStats S = Server.stats();
  EXPECT_EQ(S.BrownoutTransitions, 4u);
  EXPECT_DOUBLE_EQ(S.QueueDelayEwmaMs, 2.0);
}

TEST(OverloadBrownoutTest, RetryAfterHintScalesWithMode) {
  AuthServer Server(bareServerConfig(/*DegradedMs=*/10.0, /*ShedMs=*/100.0));
  Bytes Sheddable = envelopeFrame(0, Criticality::Sheddable, garbageRecord());
  Bytes Default = garbageRecord(); // Bare frame: Default class.

  // Degraded: Sheddable is shed with a 4x hint.
  Bytes R1 = Server.handle(Sheddable, delayed(50.0));
  std::optional<uint32_t> H1 = overloadedRetryAfterMs(R1);
  ASSERT_TRUE(H1.has_value());
  EXPECT_EQ(*H1, 400u); // OverloadRetryAfterMs default 100, x4.

  // Shed: Default is shed too, with a 16x hint.
  Bytes R2 = Server.handle(Default, delayed(200.0));
  std::optional<uint32_t> H2 = overloadedRetryAfterMs(R2);
  ASSERT_TRUE(H2.has_value());
  EXPECT_EQ(*H2, 1600u);
}

//===----------------------------------------------------------------------===//
// Criticality-aware shedding
//===----------------------------------------------------------------------===//

TEST(OverloadShedTest, SheddableGoesFirstDefaultNextCriticalLast) {
  AuthServer Server(bareServerConfig(/*DegradedMs=*/10.0, /*ShedMs=*/100.0));
  Bytes Critical = envelopeFrame(0, Criticality::Critical, garbageRecord());
  Bytes Default = garbageRecord();
  Bytes Sheddable = envelopeFrame(0, Criticality::Sheddable, garbageRecord());

  // Degraded (samples hold the EWMA at 50): only Sheddable is shed.
  EXPECT_FALSE(overloadedRetryAfterMs(Server.handle(Critical, delayed(50))));
  EXPECT_FALSE(overloadedRetryAfterMs(Server.handle(Default, delayed(50))));
  EXPECT_TRUE(overloadedRetryAfterMs(Server.handle(Sheddable, delayed(50))));

  // Shed (EWMA at 200): Default drops too; Critical still answers.
  EXPECT_FALSE(overloadedRetryAfterMs(Server.handle(Critical, delayed(200))));
  EXPECT_TRUE(overloadedRetryAfterMs(Server.handle(Default, delayed(200))));
  EXPECT_TRUE(overloadedRetryAfterMs(Server.handle(Sheddable, delayed(200))));

  AuthServerStats S = Server.stats();
  EXPECT_EQ(S.ShedCritical, 0u);
  EXPECT_EQ(S.ShedDefault, 1u);
  EXPECT_EQ(S.ShedSheddable, 2u);
  EXPECT_EQ(S.RequestsShed, 3u);
}

TEST(OverloadShedTest, HelloBatchSuppressedInShedMode) {
  AuthServer Server(bareServerConfig(/*DegradedMs=*/10.0, /*ShedMs=*/100.0));
  // Even a Critical batch is refused in Shed: the suppression is about
  // head-of-line blocking, not about who is asking.
  Bytes Batch = envelopeFrame(
      0, Criticality::Critical,
      Bytes{FrameHelloBatch, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00});

  // Normal mode serves batches (to a parse error on this garbage one).
  Bytes Served = Server.handle(Batch, delayed(0.0));
  EXPECT_FALSE(overloadedRetryAfterMs(Served).has_value());
  EXPECT_EQ(Server.stats().BatchSuppressed, 0u);

  Bytes Refused = Server.handle(Batch, delayed(200.0));
  EXPECT_TRUE(overloadedRetryAfterMs(Refused).has_value());
  AuthServerStats S = Server.stats();
  EXPECT_EQ(S.BatchSuppressed, 1u);
  EXPECT_EQ(S.ShedCritical, 1u); // Counted against the suppressed class.
}

//===----------------------------------------------------------------------===//
// Client-side deadline propagation
//===----------------------------------------------------------------------===//

TEST(OverloadClientDeadlineTest, DeadlineStopsRetriesWithTypedError) {
  ClosedPort Port;
  ASSERT_TRUE(Port.ok());

  TcpClientConfig Config;
  Config.MaxAttempts = 50; // Far more than the deadline can fund.
  Config.ConnectTimeoutMs = 1000;
  Config.BackoffBaseMs = 30;
  Config.BackoffMaxMs = 100;
  TcpClientTransport Client("127.0.0.1", Port.port(), Config);

  Bytes Request = envelopeFrame(120, Criticality::Default, garbageHello());
  auto T0 = std::chrono::steady_clock::now();
  Expected<Bytes> R = Client.roundTrip(Request);
  double ElapsedMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - T0)
                         .count();
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(transportErrcOf(R), TransportErrc::DeadlineExceeded);
  // The deadline, not the attempt budget, ended the loop -- quickly.
  EXPECT_LT(Client.lastAttempts(), Config.MaxAttempts);
  EXPECT_LT(ElapsedMs, 2000.0);
  // The shared table agrees this is terminal: no caller loops on it.
  EXPECT_FALSE(isRetryableTransportErrc(TransportErrc::DeadlineExceeded));
}

TEST(OverloadClientDeadlineTest, BareFramesKeepRetryingToExhaustion) {
  ClosedPort Port;
  ASSERT_TRUE(Port.ok());

  TcpClientConfig Config;
  Config.MaxAttempts = 3;
  Config.ConnectTimeoutMs = 500;
  Config.BackoffBaseMs = 5;
  Config.BackoffMaxMs = 10;
  TcpClientTransport Client("127.0.0.1", Port.port(), Config);

  // No envelope, no deadline: the legacy path burns its whole budget.
  Expected<Bytes> R = Client.roundTrip(garbageHello());
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(transportErrcOf(R), TransportErrc::RetriesExhausted);
  EXPECT_EQ(Client.lastAttempts(), 3);
}

//===----------------------------------------------------------------------===//
// Chain-wide retry budget
//===----------------------------------------------------------------------===//

ProvisionerConfig budgetConfig(double Initial) {
  ProvisionerConfig Config;
  Config.Breaker.FailureThreshold = 1000; // Keep breakers out of the way.
  Config.RetryBudgetInitial = Initial;
  return Config;
}

TEST(OverloadBudgetTest, FailoverRetriesSpendTokensAndExhaust) {
  StubTransport Dead([](BytesView) -> Expected<Bytes> {
    return makeTransportError(TransportErrc::ConnectFailed, "down");
  });

  Provisioner Prov(budgetConfig(/*Initial=*/1.0));
  Prov.addEndpoint("a", &Dead);
  Prov.addEndpoint("b", &Dead);

  size_t Spent = 0, Exhausted = 0;
  Prov.setEventCallback([&](const ProvisionEvent &Event) {
    Spent += Event.Kind == ProvisionEventKind::RetryBudgetSpent;
    Exhausted += Event.Kind == ProvisionEventKind::RetryBudgetExhausted;
  });

  // Walk 1: endpoint a is free, the failover to b costs the only token.
  Expected<Bytes> R1 = Prov.roundTrip(garbageRecord());
  ASSERT_FALSE(static_cast<bool>(R1));
  EXPECT_EQ(transportErrcOf(R1), TransportErrc::AllEndpointsFailed);
  EXPECT_DOUBLE_EQ(Prov.retryBudget(), 0.0);
  EXPECT_EQ(Spent, 1u);

  // Walk 2: the bucket is dry, so the walk stops after the free attempt
  // with the terminal budget verdict instead of amplifying the outage.
  Expected<Bytes> R2 = Prov.roundTrip(garbageRecord());
  ASSERT_FALSE(static_cast<bool>(R2));
  EXPECT_EQ(transportErrcOf(R2), TransportErrc::RetryBudgetExhausted);
  EXPECT_EQ(Exhausted, 1u);
  EXPECT_FALSE(isRetryableTransportErrc(TransportErrc::RetryBudgetExhausted));
}

TEST(OverloadBudgetTest, SuccessesEarnTokensBackUpToTheCap) {
  StubTransport Healthy(
      [](BytesView) -> Expected<Bytes> { return Bytes{FrameRecord, 0x01}; });

  ProvisionerConfig Config = budgetConfig(/*Initial=*/0.5);
  Config.RetryBudgetMax = 0.8;
  Provisioner Prov(Config);
  Prov.addEndpoint("a", &Healthy);

  for (int I = 0; I < 2; ++I)
    ASSERT_TRUE(static_cast<bool>(Prov.roundTrip(garbageRecord())));
  EXPECT_NEAR(Prov.retryBudget(), 0.7, 1e-9);

  // The cap bounds the post-recovery burst.
  for (int I = 0; I < 10; ++I)
    ASSERT_TRUE(static_cast<bool>(Prov.roundTrip(garbageRecord())));
  EXPECT_NEAR(Prov.retryBudget(), 0.8, 1e-9);

  // A disabled budget reports the sentinel, not a balance.
  Provisioner Unbounded((ProvisionerConfig()));
  EXPECT_DOUBLE_EQ(Unbounded.retryBudget(), -1.0);
}

TEST(OverloadBudgetTest, LowBudgetSuppressesHedging) {
  StubTransport Slow([](BytesView) -> Expected<Bytes> {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return Bytes{FrameRecord, 0xaa};
  });
  StubTransport Fast(
      [](BytesView) -> Expected<Bytes> { return Bytes{FrameRecord, 0xbb}; });

  ProvisionerConfig Config = budgetConfig(/*Initial=*/1.0); // Below 2.0.
  Config.HedgeAfterMs = 0; // Would hedge immediately if allowed.
  Provisioner Prov(Config);
  Prov.addEndpoint("slow", &Slow);
  Prov.addEndpoint("fast", &Fast);

  size_t Launched = 0, Suppressed = 0;
  Prov.setEventCallback([&](const ProvisionEvent &Event) {
    Launched += Event.Kind == ProvisionEventKind::HedgeLaunched;
    Suppressed += Event.Kind == ProvisionEventKind::HedgeSuppressed;
  });

  Expected<Bytes> R = Prov.roundTrip(garbageRecord());
  ASSERT_TRUE(static_cast<bool>(R)) << R.errorMessage();
  EXPECT_EQ((*R)[1], 0xaa); // The primary's answer, not the hedge's.
  EXPECT_EQ(Launched, 0u);
  EXPECT_EQ(Suppressed, 1u);
  // The suppressed hedge spent nothing; the success even earned.
  EXPECT_GT(Prov.retryBudget(), 1.0 - 1e-9);
}

//===----------------------------------------------------------------------===//
// Supervisor recovery rides the Sheddable class
//===----------------------------------------------------------------------===//

const char *AppSource = R"elc(
fn secret_constant() -> u64 {
  return 0xe11de;
}

export fn run_secret(inp: *u8, inlen: u64, outp: *u8, outcap: u64) -> u64 {
  var x: u64 = 0;
  if (inlen >= 8) {
    x = load_le64(inp);
  }
  if (outcap >= 8) {
    store_le64(outp, x * 33 + secret_constant());
  }
  return 0;
}
)elc";

/// Records the criticality class of every frame that crosses it, then
/// forwards unchanged -- the probe for "who sent envelope-marked traffic".
struct ClassRecordingTransport : Transport {
  Transport *Inner;
  std::mutex M;
  std::vector<Criticality> Seen;

  explicit ClassRecordingTransport(Transport *Inner) : Inner(Inner) {}

  Expected<Bytes> roundTrip(BytesView Request) override {
    Expected<RequestEnvelope> Env = unwrapRequest(Request);
    {
      std::lock_guard<std::mutex> Lock(M);
      Seen.push_back(Env ? Env->Class : Criticality::Default);
    }
    return Inner->roundTrip(Request);
  }
};

TEST(OverloadSupervisorTest, RecoveryRestoresAreMarkedSheddable) {
  ChaosSeedScope Seed("recovery-sheddable", 21);

  // A full provisioning rig (pipeline build, auth server, elide host)
  // with the class recorder wedged between host and server.
  Drbg Rng(77);
  Ed25519Seed VendorSeed{};
  Rng.fill(MutableBytesView(VendorSeed.data(), 32));
  Ed25519KeyPair Vendor = ed25519KeyPairFromSeed(VendorSeed);
  BuildOptions Options;
  Options.Storage = SecretStorage::Remote;
  Expected<BuildArtifacts> Artifacts =
      buildProtectedEnclave({{"app.elc", AppSource}}, Vendor, Options);
  ASSERT_TRUE(static_cast<bool>(Artifacts)) << Artifacts.errorMessage();

  sgx::SgxDevice Device(3001);
  sgx::AttestationAuthority Authority(4002);
  sgx::QuotingEnclave Qe(Device, Authority);
  ServerProvisioning P = provisioningFor(*Artifacts, Options);
  AuthServerConfig ServerConfig;
  ServerConfig.AuthorityKey = Authority.publicKey();
  ServerConfig.ExpectedMrEnclave = P.SanitizedMrEnclave;
  ServerConfig.ExpectedMrSigner = P.MrSigner;
  ServerConfig.Meta = Artifacts->Meta;
  ServerConfig.SecretData = Artifacts->SecretData;
  ServerConfig.RngSeed = 100;
  AuthServer Server(std::move(ServerConfig));
  LoopbackTransport Link(Server);
  ClassRecordingTransport Recorder(&Link);
  ElideHost Host(&Recorder, &Qe);
  // On-disk sealed cache so the recovery restore can be forced back onto
  // the provisioning chain (below) instead of unsealing from memory.
  std::string SealedPath = ::testing::TempDir() + "overload_sheddable_sealed.bin";
  std::remove(SealedPath.c_str());
  Host.setSealedPath(SealedPath);

  SupervisorConfig Config;
  Config.RecoveryBackoffBaseMs = 0;
  Config.Restore.MaxAttempts = 1;
  Config.Restore.RetryDelayMs = 0;
  EnclaveSupervisor Sup(
      [&] {
        return sgx::loadEnclave(Device, Artifacts->SanitizedElf,
                                Artifacts->SanitizedSig, Options.Layout);
      },
      Host, Config);
  ASSERT_FALSE(Sup.start());

  // The initial (application-driven) restore ran at Default class with
  // bare frames: nothing was marked Sheddable.
  size_t StartupFrames;
  {
    std::lock_guard<std::mutex> Lock(Recorder.M);
    StartupFrames = Recorder.Seen.size();
    ASSERT_GT(StartupFrames, 0u);
    for (Criticality C : Recorder.Seen)
      EXPECT_EQ(C, Criticality::Default);
  }

  // Swap the sealed cache for a validly-wrapped garbage payload: the
  // rebuilt enclave will fail to unseal it and fall through to the
  // server, so the recovery restore actually rides the transport.
  ASSERT_FALSE(writeFileBytes(SealedPath, encodeVersionedBlob(Bytes(64, 0x5a))));

  // Fault the enclave; the next caller drives quarantine -> recovery.
  sgx::EnclaveFaultPlan Plan;
  Plan.Seed = Seed.value();
  Plan.Script = {sgx::EnclaveFaultKind::TrapScribble};
  sgx::EnclaveChaos Chaos(Plan);
  Sup.setChaos(&Chaos);

  Bytes Input(8);
  writeLE64(Input.data(), 5);
  Expected<sgx::EcallResult> Faulted = Sup.ecall("run_secret", Input, 8);
  ASSERT_FALSE(static_cast<bool>(Faulted));

  Expected<sgx::EcallResult> Recovered = Sup.ecall("run_secret", Input, 8);
  ASSERT_TRUE(static_cast<bool>(Recovered)) << Recovered.errorMessage();
  ASSERT_TRUE(Recovered->ok()) << Recovered->Exec.Message;
  EXPECT_EQ(Sup.generation(), 2u);

  // The recovery's restore traffic -- and only it -- rode the Sheddable
  // class, so a rebuild storm queues behind live traffic, not ahead of it.
  {
    std::lock_guard<std::mutex> Lock(Recorder.M);
    ASSERT_GT(Recorder.Seen.size(), StartupFrames);
    size_t RecoverySheddable = 0;
    for (size_t I = StartupFrames; I < Recorder.Seen.size(); ++I)
      RecoverySheddable += Recorder.Seen[I] == Criticality::Sheddable;
    EXPECT_GT(RecoverySheddable, 0u);
  }

  // The hook is restored: post-recovery application traffic is Default.
  EXPECT_EQ(Host.requestClass(), Criticality::Default);
  EXPECT_EQ(Host.requestDeadlineMs(), 0u);
}

//===----------------------------------------------------------------------===//
// The metastable-failure soak
//===----------------------------------------------------------------------===//

/// A deterministic backlog model of an overloaded server cluster: every
/// tick drains fixed capacity; every call (accepted *or* rejected) adds
/// work. Rejections are cheaper than service but not free -- which is
/// exactly the property that lets unbudgeted retries hold a server under
/// water long after the original spike has passed.
struct SimCluster {
  double Backlog = 0.0;
  double DrainPerTick = 3.0;
  double ShedThreshold = 40.0;
  double CostNormal = 1.0;
  double CostSpike = 8.0;
  double RejectCost = 0.6;
  int SpikeBegin = 100;
  int SpikeEnd = 140;
  int Tick = 0;
  size_t Calls = 0;
  size_t Served = 0;
  size_t Shed = 0;
  Drbg Jitter;

  explicit SimCluster(uint64_t Seed) : Jitter(Seed ^ 0x534f414bULL) {}

  void beginTick() {
    ++Tick;
    Backlog = std::max(0.0, Backlog - DrainPerTick);
  }

  Expected<Bytes> call() {
    ++Calls;
    if (Backlog > ShedThreshold) {
      ++Shed;
      Backlog += RejectCost;
      return overloadedFrame(0);
    }
    double Cost = (Tick >= SpikeBegin && Tick < SpikeEnd) ? CostSpike
                                                          : CostNormal;
    Cost += 0.1 * static_cast<double>(Jitter.next64() % 4);
    Backlog += Cost;
    ++Served;
    return Bytes{FrameRecord, 0x01};
  }
};

/// One cluster address: all endpoints land on the same shared backlog,
/// like three VIPs in front of one drowning fleet.
struct SimEndpoint : Transport {
  SimCluster &Sim;
  explicit SimEndpoint(SimCluster &Sim) : Sim(Sim) {}
  Expected<Bytes> roundTrip(BytesView) override { return Sim.call(); }
};

struct SoakOutcome {
  size_t Offered = 0;
  size_t Succeeded = 0;
  size_t ServerCalls = 0;
  size_t WindowOffered = 0;   ///< Offered in the recovery window.
  size_t WindowSucceeded = 0; ///< Succeeded in the recovery window.
  double Amplification = 0.0; ///< Server calls per offered request.
  double WindowAvailability = 0.0;
};

/// Drives one soak: a fixed open-loop schedule of requests through a
/// three-endpoint Provisioner into the shared backlog model, with the
/// client stack retrying retryable verdicts -- the amplifying loop the
/// budget exists to break.
SoakOutcome runSoak(bool Budgets, uint64_t Seed) {
  SimCluster Sim(Seed);
  SimEndpoint E0(Sim), E1(Sim), E2(Sim);

  ProvisionerConfig Config;
  Config.Breaker.FailureThreshold = 1000;
  Config.Breaker.CooldownMs = 0;
  Config.Breaker.DefaultOverloadCooldownMs = 0; // Deterministic re-admit.
  Config.Breaker.JitterSeed = Seed;
  if (Budgets)
    Config.RetryBudgetInitial = 10.0;

  Provisioner Prov(Config);
  Prov.addEndpoint("vip-0", &E0);
  Prov.addEndpoint("vip-1", &E1);
  Prov.addEndpoint("vip-2", &E2);

  constexpr int Ticks = 400;
  constexpr int RecoveryFrom = 300; // Well past the spike's end (140).
  constexpr int ClientRetries = 3;  // roundTrips per offered request.
  const Bytes Request{FrameRecord, 0x2a};

  SoakOutcome Out;
  for (int T = 0; T < Ticks; ++T) {
    Sim.beginTick();
    bool Ok = false;
    for (int A = 0; A < ClientRetries && !Ok; ++A) {
      Expected<Bytes> R = Prov.roundTrip(Request);
      if (R) {
        Ok = true;
      } else if (!isRetryableTransportErrc(transportErrcOf(R))) {
        break; // The shared table says stop; the budget's verdict lands here.
      }
    }
    ++Out.Offered;
    Out.Succeeded += Ok;
    if (T >= RecoveryFrom) {
      ++Out.WindowOffered;
      Out.WindowSucceeded += Ok;
    }
  }
  Out.ServerCalls = Sim.Calls;
  Out.Amplification =
      static_cast<double>(Out.ServerCalls) / static_cast<double>(Out.Offered);
  Out.WindowAvailability = 100.0 * static_cast<double>(Out.WindowSucceeded) /
                           static_cast<double>(Out.WindowOffered);
  return Out;
}

TEST(OverloadSoakTest, RetryBudgetBreaksMetastableCollapse) {
  ChaosSeedScope Seed("metastable-soak", 97);

  // Same seed, same spike, same client stack -- the only difference is
  // the budget. Without it, retry amplification keeps the backlog above
  // the shed threshold forever (the classic metastable failure: the
  // *recovery* traffic is the sustaining load). With it, amplification
  // collapses to ~1 once the bucket drains, the backlog empties, and the
  // last quarter of the run serves at full availability.
  SoakOutcome Off = runSoak(/*Budgets=*/false, Seed.value());
  SoakOutcome On = runSoak(/*Budgets=*/true, Seed.value());

  // Budgets off: amplified load (3 endpoints x client retries) and a
  // collapse that outlives the spike.
  EXPECT_GT(Off.Amplification, 3.0);
  EXPECT_LT(Off.WindowAvailability, 50.0);

  // Budgets on: bounded amplification and full recovery.
  EXPECT_LE(On.Amplification, 2.0);
  EXPECT_GE(On.WindowAvailability, 99.0);

  // The healthy phase (pre-spike) was identical: the budget costs nothing
  // when nothing is failing.
  EXPECT_EQ(Off.Offered, On.Offered);
  EXPECT_GT(On.Succeeded, Off.Succeeded);

  // Determinism: replaying the same seed reproduces the run exactly
  // (this is what makes ELIDE_CHAOS_SEED replay trustworthy).
  SoakOutcome Replay = runSoak(/*Budgets=*/true, Seed.value());
  EXPECT_EQ(Replay.ServerCalls, On.ServerCalls);
  EXPECT_EQ(Replay.Succeeded, On.Succeeded);
}

} // namespace
