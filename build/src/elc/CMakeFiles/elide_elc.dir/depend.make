# Empty dependencies file for elide_elc.
# This may be replaced when dependencies are built.
