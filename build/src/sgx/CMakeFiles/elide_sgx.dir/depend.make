# Empty dependencies file for elide_sgx.
# This may be replaced when dependencies are built.
