//===- elc/CodeGen.cpp - Elc to SVM bytecode generation -----------------------===//
//
// Part of the SgxElide reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "elc/CodeGen.h"

#include "vm/Isa.h"

using namespace elide;
using namespace elide::elc;

namespace {

/// First and last registers of the expression temporary stack.
constexpr unsigned TempRegBase = 8;
constexpr unsigned TempRegCount = 19; // r8..r26
constexpr unsigned ScratchReg = 27;
/// Spill area (one slot per temp register) lives at the bottom of the
/// frame; locals follow it.
constexpr int64_t SpillAreaSize = TempRegCount * 8;
constexpr unsigned MaxArgs = 6;

/// An rvalue held in a temp register.
struct Value {
  unsigned Reg = 0;
  const Type *Ty = nullptr;
};

/// An lvalue: address in a temp register plus the value's type.
struct Place {
  unsigned AddrReg = 0;
  const Type *Ty = nullptr;
};

struct LocalVar {
  const Type *Ty = nullptr;
  int64_t FrameOffset = 0; ///< sp-relative.
};

class FunctionEmitter {
public:
  FunctionEmitter(const Module &M, const CallRegistry &Calls, TypeArena &Types,
                  std::vector<Bytes> &Rodata,
                  const std::map<std::string, const Type *> &Globals)
      : M(M), Calls(Calls), Types(Types), Rodata(Rodata), Globals(Globals) {}

  Expected<CompiledFunction> emitFunction(const FunctionDecl &F) {
    Fn = &F;
    Out = CompiledFunction();
    Out.Name = F.Name;
    Out.Exported = F.Exported;

    if (F.Params.size() > MaxArgs)
      return err(F.Loc, "functions take at most " + std::to_string(MaxArgs) +
                            " parameters");

    // Prologue: sp -= frameSize (patched at the end).
    FramePatchSites.clear();
    LocalsSize = 0;
    Scopes.clear();
    Scopes.emplace_back();
    TempDepth = 0;

    size_t Prologue = emit(Opcode::AddI, SvmRegSp, SvmRegSp, 0, 0);
    FramePatchSites.push_back({Prologue, /*Negate=*/true});

    // Park parameters in local slots so they are addressable and survive
    // calls.
    for (size_t I = 0; I < F.Params.size(); ++I) {
      const Param &P = F.Params[I];
      ELIDE_TRY(int64_t Off, allocLocal(P.Name, P.ParamType, F.Loc));
      emit(Opcode::StD, 0, SvmRegSp, static_cast<uint8_t>(1 + I),
           static_cast<int32_t>(Off));
    }

    if (Error E = emitStmt(*F.Body))
      return E;

    // Implicit return at the end (traps for non-void functions that fall
    // off the end).
    if (F.ReturnType->isVoid()) {
      emitEpilogueAndRet();
    } else {
      emit(Opcode::Trap, 0, 0, 0, 0x0dead);
    }

    // Patch frame size into the prologue and every epilogue.
    int64_t FrameSize = (SpillAreaSize + LocalsSize + 15) / 16 * 16;
    for (const auto &[Offset, Negate] : FramePatchSites) {
      int32_t Imm = static_cast<int32_t>(Negate ? -FrameSize : FrameSize);
      writeLE32(Out.Code.data() + Offset + 4, static_cast<uint32_t>(Imm));
    }
    return std::move(Out);
  }

private:
  //===--------------------------------------------------------------------===//
  // Emission utilities
  //===--------------------------------------------------------------------===//

  /// Emits one instruction; returns its byte offset in the function.
  size_t emit(Opcode Op, uint8_t Rd, uint8_t Rs1, uint8_t Rs2, int32_t Imm) {
    size_t Offset = Out.Code.size();
    emitInstruction(Out.Code, {Op, Rd, Rs1, Rs2, Imm});
    return Offset;
  }

  Error err(Location Loc, const std::string &Message) const {
    return makeError(Fn->Name + ":" + std::to_string(Loc.Line) + ":" +
                     std::to_string(Loc.Column) + ": " + Message);
  }

  /// A forward-reference label for branch targets.
  struct Label {
    std::vector<size_t> Fixups; ///< Offsets of branch instructions.
    int64_t Bound = -1;
  };

  void branchTo(Opcode Op, uint8_t Rs1, Label &L) {
    size_t Site = emit(Op, 0, Rs1, 0, 0);
    if (L.Bound >= 0)
      patchBranch(Site, static_cast<size_t>(L.Bound));
    else
      L.Fixups.push_back(Site);
  }

  void bind(Label &L) {
    L.Bound = static_cast<int64_t>(Out.Code.size());
    for (size_t Site : L.Fixups)
      patchBranch(Site, static_cast<size_t>(L.Bound));
    L.Fixups.clear();
  }

  void patchBranch(size_t Site, size_t Target) {
    int64_t Delta = static_cast<int64_t>(Target) - static_cast<int64_t>(Site);
    writeLE32(Out.Code.data() + Site + 4,
              static_cast<uint32_t>(static_cast<int32_t>(Delta)));
  }

  //===--------------------------------------------------------------------===//
  // Temp register stack
  //===--------------------------------------------------------------------===//

  Expected<unsigned> pushTemp(Location Loc) {
    if (TempDepth >= TempRegCount)
      return err(Loc, "expression too complex (temporary register stack "
                      "exhausted)");
    return TempRegBase + TempDepth++;
  }

  void popTemp(unsigned Count = 1) {
    assert(TempDepth >= Count && "temp stack underflow");
    TempDepth -= Count;
  }

  //===--------------------------------------------------------------------===//
  // Frame and scopes
  //===--------------------------------------------------------------------===//

  Expected<int64_t> allocLocal(const std::string &Name, const Type *Ty,
                               Location Loc) {
    if (Scopes.back().count(Name))
      return err(Loc, "redefinition of '" + Name + "'");
    int64_t Size = static_cast<int64_t>((Ty->sizeInBytes() + 7) / 8 * 8);
    int64_t Offset = SpillAreaSize + LocalsSize;
    LocalsSize += Size;
    Scopes.back()[Name] = {Ty, Offset};
    return Offset;
  }

  const LocalVar *lookupLocal(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  const FunctionDecl *lookupFunction(const std::string &Name) const {
    for (const FunctionDecl &F : M.Functions)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Typed loads/stores
  //===--------------------------------------------------------------------===//

  static Opcode loadOpcodeFor(const Type *Ty) {
    switch (Ty->Kind) {
    case TypeKind::Bool:
    case TypeKind::U8:
      return Opcode::LdBU;
    case TypeKind::U16:
      return Opcode::LdHU;
    case TypeKind::U32:
      return Opcode::LdWU;
    case TypeKind::U64:
    case TypeKind::I64:
    case TypeKind::Pointer:
      return Opcode::LdD;
    default:
      assert(false && "not a loadable type");
      return Opcode::LdD;
    }
  }

  static Opcode storeOpcodeFor(const Type *Ty) {
    switch (Ty->Kind) {
    case TypeKind::Bool:
    case TypeKind::U8:
      return Opcode::StB;
    case TypeKind::U16:
      return Opcode::StH;
    case TypeKind::U32:
      return Opcode::StW;
    case TypeKind::U64:
    case TypeKind::I64:
    case TypeKind::Pointer:
      return Opcode::StD;
    default:
      assert(false && "not a storable type");
      return Opcode::StD;
    }
  }

  /// Loads a 64-bit constant into \p Reg.
  void emitConstant(unsigned Reg, uint64_t V) {
    int64_t S = static_cast<int64_t>(V);
    if (S >= INT32_MIN && S <= INT32_MAX) {
      emit(Opcode::LdI, static_cast<uint8_t>(Reg), 0, 0,
           static_cast<int32_t>(S));
      return;
    }
    emit(Opcode::LdI, static_cast<uint8_t>(Reg), 0, 0,
         static_cast<int32_t>(static_cast<uint32_t>(V)));
    emit(Opcode::LdIH, static_cast<uint8_t>(Reg), 0, 0,
         static_cast<int32_t>(static_cast<uint32_t>(V >> 32)));
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  /// Whether a type may appear in a register-valued expression.
  static bool isRegType(const Type *Ty) { return Ty->isScalar(); }

  Expected<Value> emitExpr(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntLiteral: {
      ELIDE_TRY(unsigned Reg, pushTemp(E.Loc));
      emitConstant(Reg, E.IntValue);
      return Value{Reg, Types.u64()};
    }
    case ExprKind::BoolLiteral: {
      ELIDE_TRY(unsigned Reg, pushTemp(E.Loc));
      emitConstant(Reg, E.IntValue);
      return Value{Reg, Types.boolType()};
    }
    case ExprKind::StringLiteral: {
      ELIDE_TRY(unsigned Reg, pushTemp(E.Loc));
      size_t Id = internString(E.Text);
      size_t Site = emit(Opcode::LdI, static_cast<uint8_t>(Reg), 0, 0, 0);
      Out.Relocs.push_back({RelocKind::AbsRodata, Site, "", Id});
      return Value{Reg, Types.pointerTo(Types.u8())};
    }
    case ExprKind::VarRef:
      return emitVarRef(E);
    case ExprKind::Unary:
      return emitUnary(E);
    case ExprKind::Binary:
      return emitBinary(E);
    case ExprKind::Call:
      return emitCall(E, /*WantValue=*/true);
    case ExprKind::Index:
    case ExprKind::Deref: {
      ELIDE_TRY(Place P, emitPlace(E));
      if (!isRegType(P.Ty))
        return err(E.Loc, "cannot load aggregate of type " + P.Ty->str());
      emit(loadOpcodeFor(P.Ty), static_cast<uint8_t>(P.AddrReg),
           static_cast<uint8_t>(P.AddrReg), 0, 0);
      return Value{P.AddrReg, P.Ty};
    }
    case ExprKind::AddressOf: {
      ELIDE_TRY(Place P, emitPlace(*E.Lhs));
      const Type *Elem = P.Ty->isArray() ? P.Ty->Element : P.Ty;
      return Value{P.AddrReg, Types.pointerTo(Elem)};
    }
    case ExprKind::Cast: {
      ELIDE_TRY(Value V, emitExpr(*E.Lhs));
      if (!isRegType(E.CastType) || !isRegType(V.Ty))
        return err(E.Loc, "cast requires scalar types");
      emitNarrowing(V.Reg, E.CastType);
      return Value{V.Reg, E.CastType};
    }
    }
    return err(E.Loc, "unsupported expression");
  }

  /// Truncates the register to the cast target's width (no-op for 64-bit
  /// and pointer targets; bool normalizes to 0/1).
  void emitNarrowing(unsigned Reg, const Type *Target) {
    uint8_t R = static_cast<uint8_t>(Reg);
    switch (Target->Kind) {
    case TypeKind::Bool:
      emit(Opcode::Sne, R, R, 0, 0);
      break;
    case TypeKind::U8:
      emit(Opcode::AndI, R, R, 0, 0xff);
      break;
    case TypeKind::U16:
      emit(Opcode::AndI, R, R, 0, 0xffff);
      break;
    case TypeKind::U32:
      emit(Opcode::ShlI, R, R, 0, 32);
      emit(Opcode::ShrLI, R, R, 0, 32);
      break;
    default:
      break;
    }
  }

  Expected<Value> emitVarRef(const Expr &E) {
    if (const LocalVar *L = lookupLocal(E.Text)) {
      ELIDE_TRY(unsigned Reg, pushTemp(E.Loc));
      if (L->Ty->isArray()) {
        // Arrays decay to a pointer to their first element.
        emit(Opcode::AddI, static_cast<uint8_t>(Reg), SvmRegSp, 0,
             static_cast<int32_t>(L->FrameOffset));
        return Value{Reg, Types.pointerTo(L->Ty->Element)};
      }
      emit(loadOpcodeFor(L->Ty), static_cast<uint8_t>(Reg), SvmRegSp, 0,
           static_cast<int32_t>(L->FrameOffset));
      return Value{Reg, L->Ty};
    }
    auto G = Globals.find(E.Text);
    if (G != Globals.end()) {
      ELIDE_TRY(unsigned Reg, pushTemp(E.Loc));
      size_t Site = emit(Opcode::LdI, static_cast<uint8_t>(Reg), 0, 0, 0);
      Out.Relocs.push_back({RelocKind::AbsData, Site, E.Text, 0});
      if (G->second->isArray())
        return Value{Reg, Types.pointerTo(G->second->Element)};
      emit(loadOpcodeFor(G->second), static_cast<uint8_t>(Reg),
           static_cast<uint8_t>(Reg), 0, 0);
      return Value{Reg, G->second};
    }
    if (lookupFunction(E.Text)) {
      // Function reference: its address (for callr-style dispatch).
      ELIDE_TRY(unsigned Reg, pushTemp(E.Loc));
      size_t Site = emit(Opcode::LdI, static_cast<uint8_t>(Reg), 0, 0, 0);
      Out.Relocs.push_back({RelocKind::AbsFunc, Site, E.Text, 0});
      return Value{Reg, Types.u64()};
    }
    return err(E.Loc, "use of undeclared identifier '" + E.Text + "'");
  }

  /// Computes an lvalue's address into a temp register.
  Expected<Place> emitPlace(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::VarRef: {
      if (const LocalVar *L = lookupLocal(E.Text)) {
        ELIDE_TRY(unsigned Reg, pushTemp(E.Loc));
        emit(Opcode::AddI, static_cast<uint8_t>(Reg), SvmRegSp, 0,
             static_cast<int32_t>(L->FrameOffset));
        return Place{Reg, L->Ty};
      }
      auto G = Globals.find(E.Text);
      if (G != Globals.end()) {
        ELIDE_TRY(unsigned Reg, pushTemp(E.Loc));
        size_t Site = emit(Opcode::LdI, static_cast<uint8_t>(Reg), 0, 0, 0);
        Out.Relocs.push_back({RelocKind::AbsData, Site, E.Text, 0});
        return Place{Reg, G->second};
      }
      return err(E.Loc, "use of undeclared identifier '" + E.Text + "'");
    }
    case ExprKind::Deref: {
      ELIDE_TRY(Value V, emitExpr(*E.Lhs));
      if (!V.Ty->isPointer())
        return err(E.Loc, "cannot dereference non-pointer type " +
                              V.Ty->str());
      return Place{V.Reg, V.Ty->Element};
    }
    case ExprKind::Index: {
      // Base address.
      ELIDE_TRY(Value Base, emitExprOrPlaceAsPointer(*E.Lhs));
      if (!Base.Ty->isPointer())
        return err(E.Loc, "cannot index non-pointer/array type " +
                              Base.Ty->str());
      const Type *Elem = Base.Ty->Element;
      ELIDE_TRY(Value Idx, emitExpr(*E.Rhs));
      if (!Idx.Ty->isInteger())
        return err(E.Loc, "array index must be an integer");
      uint64_t Scale = Elem->sizeInBytes();
      if (Scale > 1)
        emit(Opcode::MulI, static_cast<uint8_t>(Idx.Reg),
             static_cast<uint8_t>(Idx.Reg), 0, static_cast<int32_t>(Scale));
      emit(Opcode::Add, static_cast<uint8_t>(Base.Reg),
           static_cast<uint8_t>(Base.Reg), static_cast<uint8_t>(Idx.Reg), 0);
      popTemp(); // index
      return Place{Base.Reg, Elem};
    }
    default:
      return err(E.Loc, "expression is not assignable");
    }
  }

  /// Evaluates an expression used as an indexing base: arrays yield their
  /// address (as a pointer), pointers their value.
  Expected<Value> emitExprOrPlaceAsPointer(const Expr &E) {
    // A VarRef naming an array should not be loaded.
    if (E.Kind == ExprKind::VarRef) {
      if (const LocalVar *L = lookupLocal(E.Text)) {
        if (L->Ty->isArray()) {
          ELIDE_TRY(unsigned Reg, pushTemp(E.Loc));
          emit(Opcode::AddI, static_cast<uint8_t>(Reg), SvmRegSp, 0,
               static_cast<int32_t>(L->FrameOffset));
          return Value{Reg, Types.pointerTo(L->Ty->Element)};
        }
      }
      auto G = Globals.find(E.Text);
      if (G != Globals.end() && G->second->isArray()) {
        ELIDE_TRY(unsigned Reg, pushTemp(E.Loc));
        size_t Site = emit(Opcode::LdI, static_cast<uint8_t>(Reg), 0, 0, 0);
        Out.Relocs.push_back({RelocKind::AbsData, Site, E.Text, 0});
        return Value{Reg, Types.pointerTo(G->second->Element)};
      }
    }
    return emitExpr(E);
  }

  Expected<Value> emitUnary(const Expr &E) {
    ELIDE_TRY(Value V, emitExpr(*E.Lhs));
    uint8_t R = static_cast<uint8_t>(V.Reg);
    switch (E.UOp) {
    case UnaryOp::Neg:
      if (!V.Ty->isInteger())
        return err(E.Loc, "cannot negate " + V.Ty->str());
      emit(Opcode::Sub, R, 0, R, 0);
      return Value{V.Reg, V.Ty->isSigned() ? Types.i64() : Types.u64()};
    case UnaryOp::Not:
      emit(Opcode::Seq, R, R, 0, 0);
      return Value{V.Reg, Types.boolType()};
    case UnaryOp::BitNot:
      if (!V.Ty->isInteger())
        return err(E.Loc, "cannot complement " + V.Ty->str());
      emit(Opcode::XorI, R, R, 0, -1);
      return Value{V.Reg, V.Ty};
    }
    return err(E.Loc, "unsupported unary operator");
  }

  /// Result type of an arithmetic combination.
  const Type *arithResult(const Type *A, const Type *B) const {
    if (A->isSigned() || B->isSigned())
      return Types.i64();
    return Types.u64();
  }

  Expected<Value> emitBinary(const Expr &E) {
    if (E.BOp == BinOp::LogicalAnd || E.BOp == BinOp::LogicalOr)
      return emitShortCircuit(E);

    ELIDE_TRY(Value L, emitExpr(*E.Lhs));
    ELIDE_TRY(Value R, emitExpr(*E.Rhs));
    uint8_t Rl = static_cast<uint8_t>(L.Reg);
    uint8_t Rr = static_cast<uint8_t>(R.Reg);

    // Pointer arithmetic: scale the integer side by the element size.
    if ((E.BOp == BinOp::Add || E.BOp == BinOp::Sub) &&
        (L.Ty->isPointer() || R.Ty->isPointer())) {
      if (L.Ty->isPointer() && R.Ty->isInteger()) {
        uint64_t Scale = L.Ty->Element->sizeInBytes();
        if (Scale > 1)
          emit(Opcode::MulI, Rr, Rr, 0, static_cast<int32_t>(Scale));
        emit(E.BOp == BinOp::Add ? Opcode::Add : Opcode::Sub, Rl, Rl, Rr, 0);
        popTemp();
        return Value{L.Reg, L.Ty};
      }
      if (L.Ty->isPointer() && R.Ty->isPointer() && E.BOp == BinOp::Sub) {
        if (L.Ty != R.Ty)
          return err(E.Loc, "subtracting incompatible pointer types");
        emit(Opcode::Sub, Rl, Rl, Rr, 0);
        uint64_t Scale = L.Ty->Element->sizeInBytes();
        if (Scale > 1) {
          emitConstant(ScratchReg, Scale);
          emit(Opcode::DivU, Rl, Rl, ScratchReg, 0);
        }
        popTemp();
        return Value{L.Reg, Types.u64()};
      }
      return err(E.Loc, "invalid pointer arithmetic between " + L.Ty->str() +
                            " and " + R.Ty->str());
    }

    bool Signed = L.Ty->isSigned() || R.Ty->isSigned();
    bool Comparison = false;
    Opcode Op;
    bool SwapOperands = false;
    switch (E.BOp) {
    case BinOp::Add:
      Op = Opcode::Add;
      break;
    case BinOp::Sub:
      Op = Opcode::Sub;
      break;
    case BinOp::Mul:
      Op = Opcode::Mul;
      break;
    case BinOp::Div:
      Op = Signed ? Opcode::DivS : Opcode::DivU;
      break;
    case BinOp::Rem:
      Op = Signed ? Opcode::RemS : Opcode::RemU;
      break;
    case BinOp::And:
      Op = Opcode::And;
      break;
    case BinOp::Or:
      Op = Opcode::Or;
      break;
    case BinOp::Xor:
      Op = Opcode::Xor;
      break;
    case BinOp::Shl:
      Op = Opcode::Shl;
      break;
    case BinOp::Shr:
      Op = L.Ty->isSigned() ? Opcode::ShrA : Opcode::ShrL;
      break;
    case BinOp::Eq:
      Op = Opcode::Seq;
      Comparison = true;
      break;
    case BinOp::Ne:
      Op = Opcode::Sne;
      Comparison = true;
      break;
    case BinOp::Lt:
      Op = Signed ? Opcode::SltS : Opcode::SltU;
      Comparison = true;
      break;
    case BinOp::Le:
      Op = Signed ? Opcode::SleS : Opcode::SleU;
      Comparison = true;
      break;
    case BinOp::Gt:
      Op = Signed ? Opcode::SltS : Opcode::SltU;
      Comparison = true;
      SwapOperands = true;
      break;
    case BinOp::Ge:
      Op = Signed ? Opcode::SleS : Opcode::SleU;
      Comparison = true;
      SwapOperands = true;
      break;
    default:
      return err(E.Loc, "unsupported binary operator");
    }

    if (SwapOperands)
      emit(Op, Rl, Rr, Rl, 0);
    else
      emit(Op, Rl, Rl, Rr, 0);
    popTemp();
    if (Comparison)
      return Value{L.Reg, Types.boolType()};
    return Value{L.Reg, arithResult(L.Ty, R.Ty)};
  }

  Expected<Value> emitShortCircuit(const Expr &E) {
    // result = lhs; if (lhs ==/!= 0) result = !!rhs;
    ELIDE_TRY(Value L, emitExpr(*E.Lhs));
    uint8_t Rl = static_cast<uint8_t>(L.Reg);
    emit(Opcode::Sne, Rl, Rl, 0, 0); // normalize to 0/1
    Label Done;
    if (E.BOp == BinOp::LogicalAnd)
      branchTo(Opcode::Beqz, Rl, Done);
    else
      branchTo(Opcode::Bnez, Rl, Done);
    ELIDE_TRY(Value R, emitExpr(*E.Rhs));
    uint8_t Rr = static_cast<uint8_t>(R.Reg);
    emit(Opcode::Sne, Rl, Rr, 0, 0);
    popTemp(); // rhs
    bind(Done);
    return Value{L.Reg, Types.boolType()};
  }

  Expected<Value> emitCall(const Expr &E, bool WantValue) {
    const FunctionDecl *Callee = lookupFunction(E.Text);
    if (!Callee)
      return err(E.Loc, "call to undeclared function '" + E.Text + "'");
    if (E.Args.size() != Callee->Params.size())
      return err(E.Loc, "'" + E.Text + "' expects " +
                            std::to_string(Callee->Params.size()) +
                            " arguments, got " +
                            std::to_string(E.Args.size()));
    if (E.Args.size() > MaxArgs)
      return err(E.Loc, "calls take at most " + std::to_string(MaxArgs) +
                            " arguments");

    unsigned DepthBefore = TempDepth;

    // Evaluate arguments left to right onto the temp stack.
    for (size_t I = 0; I < E.Args.size(); ++I) {
      ELIDE_TRY(Value A, emitExpr(*E.Args[I]));
      const Type *Want = Callee->Params[I].ParamType;
      if (!checkAssignable(Want, A.Ty))
        return err(E.Args[I]->Loc,
                   "argument " + std::to_string(I + 1) + " of '" + E.Text +
                       "': cannot pass " + A.Ty->str() + " as " + Want->str());
      (void)A;
    }

    // Spill live temporaries that precede the argument window.
    for (unsigned I = 0; I < DepthBefore; ++I)
      emit(Opcode::StD, 0, SvmRegSp, static_cast<uint8_t>(TempRegBase + I),
           static_cast<int32_t>(8 * I));

    // Move arguments into r1..rN.
    for (size_t I = 0; I < E.Args.size(); ++I)
      emit(Opcode::Add, static_cast<uint8_t>(1 + I),
           static_cast<uint8_t>(TempRegBase + DepthBefore + I), 0, 0);
    popTemp(static_cast<unsigned>(E.Args.size()));

    switch (Callee->Linkage) {
    case CalleeKind::Local: {
      size_t Site = emit(Opcode::Call, 0, 0, 0, 0);
      Out.Relocs.push_back({RelocKind::CallPcRel, Site, E.Text, 0});
      break;
    }
    case CalleeKind::ExternTcall: {
      auto It = Calls.Tcalls.find(E.Text);
      if (It == Calls.Tcalls.end())
        return err(E.Loc, "extern tcall '" + E.Text +
                              "' is not provided by the trusted runtime");
      emit(Opcode::Tcall, 0, 0, 0, static_cast<int32_t>(It->second));
      break;
    }
    case CalleeKind::ExternOcall: {
      auto It = Calls.Ocalls.find(E.Text);
      if (It == Calls.Ocalls.end())
        return err(E.Loc, "extern ocall '" + E.Text +
                              "' is not provided by the untrusted host");
      emit(Opcode::Ocall, 0, 0, 0, static_cast<int32_t>(It->second));
      break;
    }
    }

    // Restore spilled temporaries.
    for (unsigned I = 0; I < DepthBefore; ++I)
      emit(Opcode::LdD, static_cast<uint8_t>(TempRegBase + I), SvmRegSp, 0,
           static_cast<int32_t>(8 * I));

    if (!WantValue)
      return Value{0, Types.voidType()};
    if (Callee->ReturnType->isVoid())
      return err(E.Loc, "void function '" + E.Text + "' used as a value");

    ELIDE_TRY(unsigned Reg, pushTemp(E.Loc));
    emit(Opcode::Add, static_cast<uint8_t>(Reg), 1, 0, 0);
    return Value{Reg, Callee->ReturnType};
  }

  /// Loose assignability: integers interconvert (stores truncate);
  /// pointers must match exactly, or convert from/to *u8, or from an
  /// integer literal context (not tracked -- any integer converts with an
  /// explicit cast only).
  bool checkAssignable(const Type *Dst, const Type *Src) const {
    if (Dst == Src)
      return true;
    if (Dst->isInteger() && Src->isInteger())
      return true;
    if (Dst->isPointer() && Src->isPointer()) {
      if (Dst->Element->Kind == TypeKind::U8 ||
          Src->Element->Kind == TypeKind::U8)
        return true; // *u8 is the "void*" of Elc.
      return Dst->Element == Src->Element;
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void emitEpilogueAndRet() {
    size_t Site = emit(Opcode::AddI, SvmRegSp, SvmRegSp, 0, 0);
    FramePatchSites.push_back({Site, /*Negate=*/false});
    emit(Opcode::Ret, 0, 0, 0, 0);
  }

  Error emitStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Block: {
      Scopes.emplace_back();
      for (const StmtPtr &Child : S.Stmts)
        if (Error E = emitStmt(*Child))
          return E;
      Scopes.pop_back();
      return Error::success();
    }
    case StmtKind::VarDecl:
      return emitVarDecl(S);
    case StmtKind::Assign:
      return emitAssign(S);
    case StmtKind::ExprStmt: {
      if (S.Value->Kind == ExprKind::Call) {
        Expected<Value> V = emitCall(*S.Value, /*WantValue=*/false);
        if (!V)
          return V.takeError();
        return Error::success();
      }
      Expected<Value> V = emitExpr(*S.Value);
      if (!V)
        return V.takeError();
      popTemp();
      return Error::success();
    }
    case StmtKind::If: {
      Expected<Value> Cond = emitExpr(*S.Cond);
      if (!Cond)
        return Cond.takeError();
      Label ElseL, EndL;
      branchTo(Opcode::Beqz, static_cast<uint8_t>(Cond->Reg), ElseL);
      popTemp();
      if (Error E = emitStmt(*S.Then))
        return E;
      if (S.Else) {
        branchTo(Opcode::Jmp, 0, EndL);
        bind(ElseL);
        if (Error E = emitStmt(*S.Else))
          return E;
        bind(EndL);
      } else {
        bind(ElseL);
      }
      return Error::success();
    }
    case StmtKind::While: {
      Label Head, Exit;
      bind(Head);
      Expected<Value> Cond = emitExpr(*S.Cond);
      if (!Cond)
        return Cond.takeError();
      branchTo(Opcode::Beqz, static_cast<uint8_t>(Cond->Reg), Exit);
      popTemp();
      LoopStack.push_back({&Exit, &Head});
      if (Error E = emitStmt(*S.Body))
        return E;
      LoopStack.pop_back();
      branchTo(Opcode::Jmp, 0, Head);
      bind(Exit);
      return Error::success();
    }
    case StmtKind::For: {
      Scopes.emplace_back();
      if (S.InitStmt)
        if (Error E = emitStmt(*S.InitStmt))
          return E;
      Label Head, Step, Exit;
      bind(Head);
      if (S.Cond) {
        Expected<Value> Cond = emitExpr(*S.Cond);
        if (!Cond)
          return Cond.takeError();
        branchTo(Opcode::Beqz, static_cast<uint8_t>(Cond->Reg), Exit);
        popTemp();
      }
      LoopStack.push_back({&Exit, &Step});
      if (Error E = emitStmt(*S.Body))
        return E;
      LoopStack.pop_back();
      bind(Step);
      if (S.StepStmt)
        if (Error E = emitStmt(*S.StepStmt))
          return E;
      branchTo(Opcode::Jmp, 0, Head);
      bind(Exit);
      Scopes.pop_back();
      return Error::success();
    }
    case StmtKind::Return: {
      if (S.Value) {
        if (Fn->ReturnType->isVoid())
          return err(S.Loc, "void function cannot return a value");
        Expected<Value> V = emitExpr(*S.Value);
        if (!V)
          return V.takeError();
        if (!checkAssignable(Fn->ReturnType, V->Ty))
          return err(S.Loc, "cannot return " + V->Ty->str() + " from a "
                            "function returning " + Fn->ReturnType->str());
        emit(Opcode::Add, 1, static_cast<uint8_t>(V->Reg), 0, 0);
        popTemp();
      } else if (!Fn->ReturnType->isVoid()) {
        return err(S.Loc, "non-void function must return a value");
      }
      emitEpilogueAndRet();
      return Error::success();
    }
    case StmtKind::Break:
      if (LoopStack.empty())
        return err(S.Loc, "'break' outside of a loop");
      branchTo(Opcode::Jmp, 0, *LoopStack.back().BreakL);
      return Error::success();
    case StmtKind::Continue:
      if (LoopStack.empty())
        return err(S.Loc, "'continue' outside of a loop");
      branchTo(Opcode::Jmp, 0, *LoopStack.back().ContinueL);
      return Error::success();
    }
    return err(S.Loc, "unsupported statement");
  }

  Error emitVarDecl(const Stmt &S) {
    ELIDE_TRY(int64_t Off, allocLocal(S.Text, S.DeclType, S.Loc));
    if (S.DeclType->isArray()) {
      const Type *Elem = S.DeclType->Element;
      if (S.HasStringInit && S.Value) {
        if (Elem->Kind != TypeKind::U8)
          return err(S.Loc, "string initializer requires a u8 array");
        const std::string &Str = S.Value->Text;
        if (Str.size() + 1 > S.DeclType->ArraySize)
          return err(S.Loc, "string initializer does not fit the array");
        for (size_t I = 0; I <= Str.size(); ++I) {
          uint8_t Byte = I < Str.size() ? static_cast<uint8_t>(Str[I]) : 0;
          emit(Opcode::LdI, ScratchReg, 0, 0, Byte);
          emit(Opcode::StB, 0, SvmRegSp, ScratchReg,
               static_cast<int32_t>(Off + static_cast<int64_t>(I)));
        }
        return Error::success();
      }
      if (S.ArrayInit.size() > S.DeclType->ArraySize)
        return err(S.Loc, "too many array initializers");
      int64_t ElemSize = static_cast<int64_t>(Elem->sizeInBytes());
      for (size_t I = 0; I < S.ArrayInit.size(); ++I) {
        Expected<Value> V = emitExpr(*S.ArrayInit[I]);
        if (!V)
          return V.takeError();
        emit(storeOpcodeFor(Elem), 0, SvmRegSp,
             static_cast<uint8_t>(V->Reg),
             static_cast<int32_t>(Off + ElemSize * static_cast<int64_t>(I)));
        popTemp();
      }
      return Error::success();
    }
    if (S.Value) {
      Expected<Value> V = emitExpr(*S.Value);
      if (!V)
        return V.takeError();
      if (!checkAssignable(S.DeclType, V->Ty))
        return err(S.Loc, "cannot initialize " + S.DeclType->str() +
                              " from " + V->Ty->str());
      emit(storeOpcodeFor(S.DeclType), 0, SvmRegSp,
           static_cast<uint8_t>(V->Reg), static_cast<int32_t>(Off));
      popTemp();
    }
    return Error::success();
  }

  Error emitAssign(const Stmt &S) {
    ELIDE_TRY(Place P, emitPlace(*S.Target));
    if (!isRegType(P.Ty))
      return err(S.Loc, "cannot assign to aggregate of type " + P.Ty->str());
    Expected<Value> V = emitExpr(*S.Value);
    if (!V)
      return V.takeError();
    if (!checkAssignable(P.Ty, V->Ty))
      return err(S.Loc,
                 "cannot assign " + V->Ty->str() + " to " + P.Ty->str());
    uint8_t Addr = static_cast<uint8_t>(P.AddrReg);
    uint8_t Val = static_cast<uint8_t>(V->Reg);
    if (S.Compound != CompoundAssign::None) {
      // Load current value, combine, store back.
      emit(loadOpcodeFor(P.Ty), ScratchReg, Addr, 0, 0);
      if (S.Compound == CompoundAssign::Add) {
        if (P.Ty->isPointer()) {
          uint64_t Scale = P.Ty->Element->sizeInBytes();
          if (Scale > 1)
            emit(Opcode::MulI, Val, Val, 0, static_cast<int32_t>(Scale));
        }
        emit(Opcode::Add, Val, ScratchReg, Val, 0);
      } else {
        if (P.Ty->isPointer()) {
          uint64_t Scale = P.Ty->Element->sizeInBytes();
          if (Scale > 1)
            emit(Opcode::MulI, Val, Val, 0, static_cast<int32_t>(Scale));
        }
        emit(Opcode::Sub, Val, ScratchReg, Val, 0);
      }
    }
    emit(storeOpcodeFor(P.Ty), 0, Addr, Val, 0);
    popTemp(2);
    return Error::success();
  }

  //===--------------------------------------------------------------------===//
  // Rodata
  //===--------------------------------------------------------------------===//

  size_t internString(const std::string &S) {
    Bytes Blob(S.begin(), S.end());
    Blob.push_back(0);
    for (size_t I = 0; I < Rodata.size(); ++I)
      if (Rodata[I] == Blob)
        return I;
    Rodata.push_back(std::move(Blob));
    return Rodata.size() - 1;
  }

  struct LoopLabels {
    Label *BreakL;
    Label *ContinueL;
  };

  const Module &M;
  const CallRegistry &Calls;
  TypeArena &Types;
  std::vector<Bytes> &Rodata;
  const std::map<std::string, const Type *> &Globals;

  const FunctionDecl *Fn = nullptr;
  CompiledFunction Out;
  std::vector<std::map<std::string, LocalVar>> Scopes;
  std::vector<std::pair<size_t, bool>> FramePatchSites;
  std::vector<LoopLabels> LoopStack;
  int64_t LocalsSize = 0;
  unsigned TempDepth = 0;
};

/// Constant-folds a global initializer expression.
Expected<uint64_t> evalConst(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLiteral:
  case ExprKind::BoolLiteral:
    return E.IntValue;
  case ExprKind::Unary: {
    ELIDE_TRY(uint64_t V, evalConst(*E.Lhs));
    switch (E.UOp) {
    case UnaryOp::Neg:
      return 0 - V;
    case UnaryOp::Not:
      return static_cast<uint64_t>(V == 0);
    case UnaryOp::BitNot:
      return ~V;
    }
    return makeError("bad unary op in constant");
  }
  case ExprKind::Binary: {
    ELIDE_TRY(uint64_t L, evalConst(*E.Lhs));
    ELIDE_TRY(uint64_t R, evalConst(*E.Rhs));
    switch (E.BOp) {
    case BinOp::Add:
      return L + R;
    case BinOp::Sub:
      return L - R;
    case BinOp::Mul:
      return L * R;
    case BinOp::Div:
      if (R == 0)
        return makeError("division by zero in constant initializer");
      return L / R;
    case BinOp::Rem:
      if (R == 0)
        return makeError("remainder by zero in constant initializer");
      return L % R;
    case BinOp::And:
      return L & R;
    case BinOp::Or:
      return L | R;
    case BinOp::Xor:
      return L ^ R;
    case BinOp::Shl:
      return L << (R & 63);
    case BinOp::Shr:
      return L >> (R & 63);
    default:
      return makeError("operator not allowed in constant initializer");
    }
  }
  case ExprKind::Cast:
    return evalConst(*E.Lhs);
  default:
    return makeError("global initializers must be constant expressions");
  }
}

/// Serializes a constant into \p Out at the width of \p Ty.
void appendScalar(Bytes &Out, const Type *Ty, uint64_t V) {
  uint8_t Tmp[8];
  writeLE64(Tmp, V);
  Out.insert(Out.end(), Tmp, Tmp + Ty->sizeInBytes());
}

} // namespace

Expected<CompiledUnit> elide::elc::generateCode(const Module &M,
                                                const CallRegistry &Calls,
                                                TypeArena &Types) {
  CompiledUnit Unit;

  // Duplicate-definition checks.
  std::map<std::string, const Type *> GlobalTypes;
  for (const GlobalDecl &G : M.Globals) {
    if (GlobalTypes.count(G.Name))
      return makeError("duplicate global '" + G.Name + "'");
    GlobalTypes[G.Name] = G.DeclType;
  }
  {
    std::map<std::string, int> Seen;
    for (const FunctionDecl &F : M.Functions)
      if (++Seen[F.Name] > 1)
        return makeError("duplicate function '" + F.Name + "'");
  }

  // Lower globals to initialized bytes.
  for (const GlobalDecl &G : M.Globals) {
    CompiledGlobal Out;
    Out.Name = G.Name;
    Out.Ty = G.DeclType;
    if (G.HasStringInit) {
      if (!G.DeclType->isArray() ||
          G.DeclType->Element->Kind != TypeKind::U8)
        return makeError("global '" + G.Name +
                         "': string initializer requires a u8 array");
      if (G.StringInit.size() + 1 > G.DeclType->ArraySize)
        return makeError("global '" + G.Name +
                         "': string initializer does not fit");
      Out.Init.assign(G.StringInit.begin(), G.StringInit.end());
      Out.Init.resize(G.DeclType->sizeInBytes(), 0);
    } else if (!G.ArrayInit.empty()) {
      if (!G.DeclType->isArray())
        return makeError("global '" + G.Name +
                         "': array initializer on non-array");
      if (G.ArrayInit.size() > G.DeclType->ArraySize)
        return makeError("global '" + G.Name + "': too many initializers");
      for (const ExprPtr &E : G.ArrayInit) {
        ELIDE_TRY(uint64_t V, evalConst(*E));
        appendScalar(Out.Init, G.DeclType->Element, V);
      }
      Out.Init.resize(G.DeclType->sizeInBytes(), 0);
    } else if (G.Init) {
      ELIDE_TRY(uint64_t V, evalConst(*G.Init));
      appendScalar(Out.Init, G.DeclType, V);
    }
    Unit.Globals.push_back(std::move(Out));
  }

  // Lower function bodies.
  for (const FunctionDecl &F : M.Functions) {
    if (F.Linkage != CalleeKind::Local)
      continue;
    FunctionEmitter Emitter(M, Calls, Types, Unit.Rodata, GlobalTypes);
    ELIDE_TRY(CompiledFunction CF, Emitter.emitFunction(F));
    Unit.Functions.push_back(std::move(CF));
  }

  return Unit;
}
